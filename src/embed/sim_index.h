#ifndef KGPIP_EMBED_SIM_INDEX_H_
#define KGPIP_EMBED_SIM_INDEX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/cancel.h"
#include "util/status.h"

namespace kgpip::embed {

/// One nearest-neighbour hit.
struct SearchHit {
  std::string key;
  double similarity = 0.0;  // cosine
};

/// Cosine similarity over contiguous rows with a 4-way unrolled
/// dot-product kernel. The accumulation pattern is fixed (four partial
/// sums folded pairwise), so every caller — index build, search, and the
/// regression tests' reference path — rounds identically.
double BlockedCosine(const double* a, const double* b, size_t dims);

/// In-process dense-vector similarity index — the library's stand-in for
/// FAISS (Johnson et al. 2021). Supports exact flat search and an
/// IVF-style mode (k-means coarse quantizer + probed cells) that trades
/// recall for speed at larger corpus sizes.
///
/// Storage is one contiguous row-major buffer (not vector-of-vectors),
/// so scans stream linearly through memory and the blocked dot kernel
/// sees dense rows. The k-means build and `SearchBatch` fan out over the
/// global util::ThreadPool; results are index-ordered and bit-identical
/// at any thread count.
class SimIndex {
 public:
  struct Options {
    /// 0 = exact flat search. >0 = IVF with this many coarse cells.
    int num_cells = 0;
    /// Cells probed per query in IVF mode.
    int num_probes = 2;
    uint64_t seed = 17;
  };

  SimIndex();
  explicit SimIndex(Options options);

  /// Adds a keyed vector. All vectors must share one dimensionality.
  Status Add(const std::string& key, std::vector<double> vector);

  /// Builds the coarse quantizer (IVF mode only; no-op for flat).
  Status Build();

  /// Top-k most cosine-similar entries to `query`, most similar first.
  /// Ties order by insertion index (deterministic across platforms and
  /// thread counts). `cancel`, when non-null, is polled between scan
  /// blocks: a cancelled search stops burning CPU mid-scan and returns
  /// kResourceExhausted instead of finishing a doomed pass — the serve
  /// watchdog's lever against deadline-exceeded requests.
  Result<std::vector<SearchHit>> Search(
      const std::vector<double>& query, size_t k,
      const util::CancelToken* cancel = nullptr) const;

  /// Batched queries: out[i] == Search(queries[i], k). Queries run in
  /// parallel; the first (lowest-index) failure is returned. A cancelled
  /// token surfaces as kResourceExhausted like in Search.
  Result<std::vector<std::vector<SearchHit>>> SearchBatch(
      const std::vector<std::vector<double>>& queries, size_t k,
      const util::CancelToken* cancel = nullptr) const;

  size_t size() const { return keys_.size(); }
  size_t dims() const { return dims_; }
  /// Row i of the contiguous buffer (valid while the index is unchanged).
  const double* RowData(size_t i) const { return data_.data() + i * dims_; }
  std::vector<double> VectorOf(size_t i) const {
    return std::vector<double>(RowData(i), RowData(i) + dims_);
  }
  const std::string& KeyOf(size_t i) const { return keys_[i]; }

 private:
  /// Scores `candidates` against `query` and keeps the top k. Polls
  /// `cancel` every scoring block; a cancelled scan returns
  /// kResourceExhausted without finishing.
  Result<std::vector<SearchHit>> TopK(const std::vector<double>& query,
                                      const std::vector<size_t>& candidates,
                                      size_t k,
                                      const util::CancelToken* cancel) const;

  Options options_;
  std::vector<std::string> keys_;
  size_t dims_ = 0;
  std::vector<double> data_;  // keys_.size() x dims_, row-major
  // IVF state.
  bool built_ = false;
  std::vector<double> centroids_;  // num_cells x dims_, row-major
  std::vector<std::vector<size_t>> cells_;
};

}  // namespace kgpip::embed

#endif  // KGPIP_EMBED_SIM_INDEX_H_
