#ifndef KGPIP_EMBED_SIM_INDEX_H_
#define KGPIP_EMBED_SIM_INDEX_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace kgpip::embed {

/// One nearest-neighbour hit.
struct SearchHit {
  std::string key;
  double similarity = 0.0;  // cosine
};

/// In-process dense-vector similarity index — the library's stand-in for
/// FAISS (Johnson et al. 2021). Supports exact flat search and an
/// IVF-style mode (k-means coarse quantizer + probed cells) that trades
/// recall for speed at larger corpus sizes.
class SimIndex {
 public:
  struct Options {
    /// 0 = exact flat search. >0 = IVF with this many coarse cells.
    int num_cells = 0;
    /// Cells probed per query in IVF mode.
    int num_probes = 2;
    uint64_t seed = 17;
  };

  SimIndex();
  explicit SimIndex(Options options);

  /// Adds a keyed vector. All vectors must share one dimensionality.
  Status Add(const std::string& key, std::vector<double> vector);

  /// Builds the coarse quantizer (IVF mode only; no-op for flat).
  Status Build();

  /// Top-k most cosine-similar entries to `query`.
  Result<std::vector<SearchHit>> Search(const std::vector<double>& query,
                                        size_t k) const;

  size_t size() const { return keys_.size(); }
  const std::vector<double>& VectorOf(size_t i) const { return vectors_[i]; }
  const std::string& KeyOf(size_t i) const { return keys_[i]; }

 private:
  Options options_;
  std::vector<std::string> keys_;
  std::vector<std::vector<double>> vectors_;
  // IVF state.
  bool built_ = false;
  std::vector<std::vector<double>> centroids_;
  std::vector<std::vector<size_t>> cells_;
};

}  // namespace kgpip::embed

#endif  // KGPIP_EMBED_SIM_INDEX_H_
