#ifndef KGPIP_EMBED_SIM_INDEX_H_
#define KGPIP_EMBED_SIM_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/cancel.h"
#include "util/status.h"

namespace kgpip::embed {

/// One nearest-neighbour hit.
struct SearchHit {
  std::string key;
  double similarity = 0.0;  // cosine
};

/// Cosine similarity over contiguous rows with a 4-way unrolled
/// dot-product kernel. The accumulation pattern is fixed (four partial
/// sums folded pairwise), so every caller — index build, search, and the
/// regression tests' reference path — rounds identically.
double BlockedCosine(const double* a, const double* b, size_t dims);

/// The dot-product third of BlockedCosine on its own: the same four
/// partial sums over a[i]*b[i], folded pairwise. Splitting the fused
/// loop into separate dot/norm passes leaves each accumulator chain
/// untouched, so BlockedCosine(a, b, d) ==
/// CosineFromParts(BlockedDot(a, b, d), BlockedSquaredNorm(a, d),
/// BlockedSquaredNorm(b, d)) bit for bit — which is what lets the index
/// precompute row norms once at Add time instead of re-deriving ||b||
/// on every query-row pair.
double BlockedDot(const double* a, const double* b, size_t dims);

/// Sum of squares with BlockedCosine's norm accumulator chain.
double BlockedSquaredNorm(const double* a, size_t dims);

/// BlockedCosine's final combine: 0.0 on a non-positive norm, else
/// dot / sqrt(na * nb).
double CosineFromParts(double dot, double na, double nb);

/// In-process dense-vector similarity index — the library's stand-in for
/// FAISS (Johnson et al. 2021). Supports exact flat search and a
/// two-level IVF mode: a deterministic k-means coarse quantizer over
/// cell-contiguous segments of SQ8-quantized residuals (per-dimension
/// min/max affine codec, dim-major uint8 code panels scanned by the
/// nn::simd::Sq8DotAccum kernel), with exact re-ranking of the top
/// `rerank_k` approximate candidates over the retained f64 rows so the
/// final hit order is identical to what a flat scan of those candidates
/// would produce — deterministic at any thread count and ISA level.
///
/// Storage is one contiguous row-major buffer (not vector-of-vectors),
/// so scans stream linearly through memory and the blocked dot kernel
/// sees dense rows. The k-means build and `SearchBatch` fan out over the
/// global util::ThreadPool; results are index-ordered and bit-identical
/// at any thread count.
///
/// Segments persist via SaveSegments/LoadSegments in the versioned
/// `KGSEG1` format (magic + version + FNV-1a checksum over the payload,
/// temp-then-rename writes). Corrupt or truncated segment files are
/// rejected with kParseError and byte-offset diagnostics; callers
/// rebuild from source embeddings instead of serving corrupt data.
class SimIndex {
 public:
  struct Options {
    /// 0 = exact flat search. >0 = IVF with this many coarse cells.
    /// -1 = auto: flat below kAutoIvfMinRows rows, else ~sqrt(N) cells.
    int num_cells = 0;
    /// Cells probed per query in IVF mode.
    int num_probes = 2;
    /// IVF candidates exact-reranked per query (floor; k wins if larger).
    int rerank_k = 64;
    /// SQ8-quantize cell residuals (IVF mode). When false, probed cells
    /// are scanned exactly over the f64 rows like the flat path.
    bool quantize = true;
    uint64_t seed = 17;
  };

  /// Auto mode (num_cells = -1) stays exact below this many rows, so
  /// paper-scale corpora keep the flat scan bit for bit.
  static constexpr size_t kAutoIvfMinRows = 4096;

  SimIndex();
  explicit SimIndex(Options options);

  /// Adds a keyed vector. All vectors must share one dimensionality.
  /// The row's squared norm (exact-scan operand) and inverse norm
  /// (quantized-scan operand) are computed once here.
  Status Add(const std::string& key, std::vector<double> vector);

  /// Builds the coarse quantizer and quantized segments (IVF mode only;
  /// no-op for flat).
  Status Build();

  /// Top-k most cosine-similar entries to `query`, most similar first.
  /// Ties order by insertion index (deterministic across platforms and
  /// thread counts). `cancel`, when non-null, is polled between scan
  /// blocks: a cancelled search stops burning CPU mid-scan and returns
  /// kResourceExhausted instead of finishing a doomed pass — the serve
  /// watchdog's lever against deadline-exceeded requests.
  Result<std::vector<SearchHit>> Search(
      const std::vector<double>& query, size_t k,
      const util::CancelToken* cancel = nullptr) const;

  /// Batched queries: out[i] == Search(queries[i], k). Queries run in
  /// parallel; the first (lowest-index) failure is returned. A cancelled
  /// token surfaces as kResourceExhausted like in Search.
  Result<std::vector<std::vector<SearchHit>>> SearchBatch(
      const std::vector<std::vector<double>>& queries, size_t k,
      const util::CancelToken* cancel = nullptr) const;

  /// Writes the built index (rows, norms, centroids, cells, SQ8
  /// segments) to `path` in the KGSEG1 format, temp-then-rename.
  Status SaveSegments(const std::string& path) const;

  /// Replaces this index's contents from a KGSEG1 file. On any parse or
  /// checksum failure the index is left unchanged and kParseError is
  /// returned with the failing byte offset; callers rebuild from source
  /// embeddings (never serve a corrupt segment).
  Status LoadSegments(const std::string& path);

  size_t size() const { return keys_.size(); }
  size_t dims() const { return dims_; }
  /// Coarse cells actually built (0 until Build in IVF mode; 0 for flat).
  size_t num_cells_built() const { return cells_.size(); }
  bool quantized() const { return quantized_; }
  /// Row i of the contiguous buffer (valid while the index is unchanged).
  const double* RowData(size_t i) const { return data_.data() + i * dims_; }
  std::vector<double> VectorOf(size_t i) const {
    return std::vector<double>(RowData(i), RowData(i) + dims_);
  }
  const std::string& KeyOf(size_t i) const { return keys_[i]; }

 private:
  /// One coarse cell's SQ8 payload: per-dim residual min + step, and a
  /// dim-major uint8 panel (codes[d * padded + r] is row r's code for
  /// dimension d). `padded` rounds the cell's row count up to a multiple
  /// of 8 so both AVX2 and AVX-512 tile the row axis without masks; pad
  /// rows hold zero codes and are skipped when collecting candidates.
  struct CellSegment {
    std::vector<double> mins;    // dims
    std::vector<double> steps;   // dims, (max-min)/255; 0 = constant dim
    size_t padded = 0;
    std::vector<uint8_t> codes;  // dims x padded
  };

  /// Cells for `n` rows under the auto policy / explicit setting.
  size_t EffectiveCells(size_t n) const;

  /// Exactly scores `candidates` against `query` and keeps the top k
  /// (dot / precomputed norms; bit-identical to BlockedCosine). Polls
  /// `cancel` every scoring block; a cancelled scan returns
  /// kResourceExhausted without finishing.
  Result<std::vector<SearchHit>> TopK(const std::vector<double>& query,
                                      double query_sq_norm,
                                      const std::vector<size_t>& candidates,
                                      size_t k,
                                      const util::CancelToken* cancel) const;

  /// Quantizes cell residuals into segments_ and publishes the
  /// max-abs-decode-error gauge.
  void BuildSegments();

  Options options_;
  std::vector<std::string> keys_;
  size_t dims_ = 0;
  std::vector<double> data_;  // keys_.size() x dims_, row-major
  std::vector<double> row_sq_norms_;   // per row, exact-scan operand
  std::vector<double> row_inv_norms_;  // per row, quantized-scan operand
  // IVF state.
  bool built_ = false;
  std::vector<double> centroids_;  // num_cells x dims_, row-major
  std::vector<double> centroid_sq_norms_;
  std::vector<std::vector<size_t>> cells_;
  bool quantized_ = false;
  std::vector<CellSegment> segments_;  // parallel to cells_ when quantized_
};

}  // namespace kgpip::embed

#endif  // KGPIP_EMBED_SIM_INDEX_H_
