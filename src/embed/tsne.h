#ifndef KGPIP_EMBED_TSNE_H_
#define KGPIP_EMBED_TSNE_H_

#include <cstdint>
#include <vector>

namespace kgpip::embed {

/// t-SNE options (exact, no Barnes-Hut — dataset counts here are tiny).
struct TsneOptions {
  double perplexity = 8.0;
  int iterations = 400;
  double learning_rate = 100.0;
  double early_exaggeration = 4.0;
  int exaggeration_iters = 80;
  uint64_t seed = 29;
};

/// Embeds high-dimensional points into 2-D (the Figure 10 visualization).
/// Returns one (x, y) pair per input point.
std::vector<std::pair<double, double>> Tsne2D(
    const std::vector<std::vector<double>>& points,
    const TsneOptions& options = {});

}  // namespace kgpip::embed

#endif  // KGPIP_EMBED_TSNE_H_
