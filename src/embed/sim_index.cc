#include "embed/sim_index.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "nn/simd_kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace kgpip::embed {

namespace {

/// Candidate scoring fans out once the scan is big enough to amortize
/// dispatch; below this the inline path wins.
constexpr size_t kParallelScanThreshold = 2048;

/// Candidates scored between cancellation polls. Small enough that a
/// deadline-exceeded request stops within microseconds of cancellation,
/// large enough that the relaxed atomic load is amortized away.
constexpr size_t kCancelPollStride = 512;

/// Segment files lead with "KGSEG1 <version> <fnv1a> <size>\n".
constexpr char kSegmentMagic[] = "KGSEG1";
constexpr unsigned kSegmentVersion = 1;

Status CancelledStatus() {
  return Status::ResourceExhausted(
      "similarity search cancelled (deadline exceeded)");
}

/// Ranking comparator: similarity descending, insertion index ascending.
/// The index tie-break pins an order std::sort left unspecified, so the
/// top-k selection, the full-sort reference, and any platform agree. It
/// also makes the comparator a total order, so the *set* nth_element
/// partitions off is unique no matter how the implementation permutes —
/// which is what keeps the IVF rerank candidate set deterministic.
struct RankedSim {
  double sim;
  size_t index;
  bool operator<(const RankedSim& other) const {
    if (sim != other.sim) return sim > other.sim;
    return index < other.index;
  }
};

obs::Counter* SearchAllocCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "embed.index.search_allocs");
  return counter;
}

/// Grow-only resize that counts allocation events, the
/// gen.generate_allocs idiom: steady-state queries must drive this
/// counter flat (tests pin a zero delta after warm-up).
template <typename T>
void EnsureSize(std::vector<T>* v, size_t n) {
  if (v->capacity() < n) {
    SearchAllocCounter()->Increment();
    v->reserve(n);
  }
  v->resize(n);
}

/// Per-thread query workspace, reused across searches (the fix for the
/// per-call cell_sims allocation). Thread-local so SearchBatch lanes
/// never share one.
struct SearchScratch {
  std::vector<RankedSim> cell_ranked;  // centroid ranking
  std::vector<RankedSim> approx;       // quantized candidate scores
  std::vector<RankedSim> exact;        // exact scoring / rerank
  std::vector<double> weights;         // q[d] * step[d] per probed cell
  std::vector<double> scores;          // SQ8 kernel accumulators
  std::vector<size_t> candidates;      // exact-scan id list
};

SearchScratch& GetScratch() {
  static thread_local SearchScratch scratch;
  return scratch;
}

size_t RoundUp8(size_t n) { return (n + 7) & ~size_t{7}; }

void AppendU64(std::string* out, uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void AppendF64s(std::string* out, const double* p, size_t n) {
  out->append(reinterpret_cast<const char*>(p), n * sizeof(double));
}

/// Bounds-checked cursor over a verified payload. Offsets in errors are
/// absolute file offsets (header included) so a hexdump lands on the
/// reported byte.
struct SegmentReader {
  const std::string& payload;
  const std::string& path;
  size_t header_bytes;
  size_t pos = 0;

  Status Truncated(size_t need) const {
    return Status::ParseError(StrFormat(
        "segment '%s': truncated payload — need %llu bytes at byte "
        "offset %llu but only %llu remain",
        path.c_str(), static_cast<unsigned long long>(need),
        static_cast<unsigned long long>(header_bytes + pos),
        static_cast<unsigned long long>(payload.size() - pos)));
  }

  Status ReadBytes(void* dst, size_t n) {
    if (payload.size() - pos < n) return Truncated(n);
    std::memcpy(dst, payload.data() + pos, n);
    pos += n;
    return Status::Ok();
  }

  Status ReadU64(uint64_t* v) { return ReadBytes(v, sizeof(*v)); }

  Status ReadF64s(std::vector<double>* out, size_t n) {
    const size_t bytes = n * sizeof(double);
    if (payload.size() - pos < bytes) return Truncated(bytes);
    out->resize(n);
    std::memcpy(out->data(), payload.data() + pos, bytes);
    pos += bytes;
    return Status::Ok();
  }
};

}  // namespace

double BlockedCosine(const double* a, const double* b, size_t dims) {
  double d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
  double na0 = 0.0, na1 = 0.0, na2 = 0.0, na3 = 0.0;
  double nb0 = 0.0, nb1 = 0.0, nb2 = 0.0, nb3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= dims; i += 4) {
    d0 += a[i] * b[i];
    d1 += a[i + 1] * b[i + 1];
    d2 += a[i + 2] * b[i + 2];
    d3 += a[i + 3] * b[i + 3];
    na0 += a[i] * a[i];
    na1 += a[i + 1] * a[i + 1];
    na2 += a[i + 2] * a[i + 2];
    na3 += a[i + 3] * a[i + 3];
    nb0 += b[i] * b[i];
    nb1 += b[i + 1] * b[i + 1];
    nb2 += b[i + 2] * b[i + 2];
    nb3 += b[i + 3] * b[i + 3];
  }
  for (; i < dims; ++i) {
    d0 += a[i] * b[i];
    na0 += a[i] * a[i];
    nb0 += b[i] * b[i];
  }
  const double dot = (d0 + d1) + (d2 + d3);
  const double na = (na0 + na1) + (na2 + na3);
  const double nb = (nb0 + nb1) + (nb2 + nb3);
  return CosineFromParts(dot, na, nb);
}

double BlockedDot(const double* a, const double* b, size_t dims) {
  double d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= dims; i += 4) {
    d0 += a[i] * b[i];
    d1 += a[i + 1] * b[i + 1];
    d2 += a[i + 2] * b[i + 2];
    d3 += a[i + 3] * b[i + 3];
  }
  for (; i < dims; ++i) d0 += a[i] * b[i];
  return (d0 + d1) + (d2 + d3);
}

double BlockedSquaredNorm(const double* a, size_t dims) {
  double n0 = 0.0, n1 = 0.0, n2 = 0.0, n3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= dims; i += 4) {
    n0 += a[i] * a[i];
    n1 += a[i + 1] * a[i + 1];
    n2 += a[i + 2] * a[i + 2];
    n3 += a[i + 3] * a[i + 3];
  }
  for (; i < dims; ++i) n0 += a[i] * a[i];
  return (n0 + n1) + (n2 + n3);
}

double CosineFromParts(double dot, double na, double nb) {
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

SimIndex::SimIndex() : SimIndex(Options()) {}
SimIndex::SimIndex(Options options) : options_(options) {}

Status SimIndex::Add(const std::string& key, std::vector<double> vector) {
  if (keys_.empty()) {
    dims_ = vector.size();
  } else if (vector.size() != dims_) {
    return Status::InvalidArgument(
        "vector dimensionality mismatch for key '" + key + "'");
  }
  keys_.push_back(key);
  data_.insert(data_.end(), vector.begin(), vector.end());
  const double sq = BlockedSquaredNorm(vector.data(), dims_);
  row_sq_norms_.push_back(sq);
  row_inv_norms_.push_back(sq > 0.0 ? 1.0 / std::sqrt(sq) : 0.0);
  built_ = false;
  return Status::Ok();
}

size_t SimIndex::EffectiveCells(size_t n) const {
  if (n == 0 || options_.num_cells == 0) return 0;
  if (options_.num_cells > 0) {
    return std::min<size_t>(static_cast<size_t>(options_.num_cells), n);
  }
  // Auto: the exact scan is unbeatable at paper scale; past the
  // threshold, ~sqrt(N) cells balance the centroid ranking against the
  // probed-cell scans.
  if (n < kAutoIvfMinRows) return 0;
  return std::min<size_t>(
      static_cast<size_t>(std::lround(std::sqrt(static_cast<double>(n)))), n);
}

Status SimIndex::Build() {
  KGPIP_TRACE_SPAN("embed.index_build");
  static obs::Histogram* build_seconds =
      obs::MetricsRegistry::Global().GetHistogram("embed.index_build_seconds");
  static obs::Gauge* size_gauge =
      obs::MetricsRegistry::Global().GetGauge("embed.index.size");
  static obs::Gauge* cells_gauge =
      obs::MetricsRegistry::Global().GetGauge("embed.index.cells");
  static obs::Gauge* quantized_gauge =
      obs::MetricsRegistry::Global().GetGauge("embed.index.quantized");
  Stopwatch watch;
  const size_t n = keys_.size();
  centroids_.clear();
  centroid_sq_norms_.clear();
  cells_.clear();
  segments_.clear();
  quantized_ = false;
  const size_t k = EffectiveCells(n);
  size_gauge->Set(static_cast<double>(n));
  if (k == 0) {
    built_ = true;
    cells_gauge->Set(0.0);
    quantized_gauge->Set(0.0);
    build_seconds->Record(watch.ElapsedSeconds());
    return Status::Ok();
  }
  Rng rng(options_.seed);
  // k-means++ style init: random distinct picks. Past paper scale the
  // refinement runs on a permuted sample — centroids from a few thousand
  // points are statistically the same and the build stays sub-linear in
  // iterations — then one full parallel pass assigns every row. All of
  // it is a pure function of (rows, seed): bit-identical at any thread
  // count.
  std::vector<size_t> perm = rng.Permutation(n);
  const size_t sample_n = std::min(n, std::max<size_t>(k * 64, 4096));
  const int iters = sample_n > 8192 ? 6 : 12;
  centroids_.assign(k * dims_, 0.0);
  for (size_t c = 0; c < k; ++c) {
    std::copy(RowData(perm[c]), RowData(perm[c]) + dims_,
              centroids_.data() + c * dims_);
  }
  std::vector<size_t> assignment(sample_n, 0);
  std::vector<double> centroid_sq(k, 0.0);
  util::ThreadPool& pool = util::ThreadPool::Global();
  for (int iter = 0; iter < iters; ++iter) {
    for (size_t c = 0; c < k; ++c) {
      centroid_sq[c] = BlockedSquaredNorm(centroids_.data() + c * dims_,
                                          dims_);
    }
    // Assignment is embarrassingly parallel: each item writes only its
    // own slot, and the best-centroid argmax is a pure function of the
    // (fixed) centroid buffer — bit-identical at any thread count. The
    // row and centroid norms are precomputed, and the dot/norm split
    // rounds exactly like the fused BlockedCosine.
    pool.ParallelFor(sample_n, [&](size_t s) {
      const double* row = RowData(perm[s]);
      const double row_sq = row_sq_norms_[perm[s]];
      double best = -2.0;
      size_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double sim = CosineFromParts(
            BlockedDot(row, centroids_.data() + c * dims_, dims_), row_sq,
            centroid_sq[c]);
        if (sim > best) {
          best = sim;
          best_c = c;
        }
      }
      assignment[s] = best_c;
    });
    // Centroid update stays serial and sample-ordered so the summation
    // order (and therefore the rounded centroids) is fixed.
    std::fill(centroids_.begin(), centroids_.end(), 0.0);
    std::vector<size_t> counts(k, 0);
    for (size_t s = 0; s < sample_n; ++s) {
      ++counts[assignment[s]];
      const double* row = RowData(perm[s]);
      double* centroid = centroids_.data() + assignment[s] * dims_;
      for (size_t d = 0; d < dims_; ++d) centroid[d] += row[d];
    }
    for (size_t c = 0; c < k; ++c) {
      double* centroid = centroids_.data() + c * dims_;
      if (counts[c] == 0) {
        const double* row = RowData(perm[rng.UniformInt(sample_n)]);
        std::copy(row, row + dims_, centroid);
        continue;
      }
      for (size_t d = 0; d < dims_; ++d) {
        centroid[d] /= static_cast<double>(counts[c]);
      }
    }
  }
  centroid_sq_norms_.resize(k);
  for (size_t c = 0; c < k; ++c) {
    centroid_sq_norms_[c] =
        BlockedSquaredNorm(centroids_.data() + c * dims_, dims_);
  }
  // Full assignment over every row against the final centroids.
  std::vector<size_t> full_assignment(n, 0);
  pool.ParallelFor(n, [&](size_t i) {
    const double* row = RowData(i);
    const double row_sq = row_sq_norms_[i];
    double best = -2.0;
    size_t best_c = 0;
    for (size_t c = 0; c < k; ++c) {
      const double sim = CosineFromParts(
          BlockedDot(row, centroids_.data() + c * dims_, dims_), row_sq,
          centroid_sq_norms_[c]);
      if (sim > best) {
        best = sim;
        best_c = c;
      }
    }
    full_assignment[i] = best_c;
  });
  cells_.assign(k, {});
  for (size_t i = 0; i < n; ++i) cells_[full_assignment[i]].push_back(i);
  if (options_.quantize) BuildSegments();
  built_ = true;
  cells_gauge->Set(static_cast<double>(cells_.size()));
  quantized_gauge->Set(quantized_ ? 1.0 : 0.0);
  build_seconds->Record(watch.ElapsedSeconds());
  return Status::Ok();
}

void SimIndex::BuildSegments() {
  static obs::Gauge* err_gauge = obs::MetricsRegistry::Global().GetGauge(
      "embed.index.sq8_max_abs_error");
  segments_.assign(cells_.size(), CellSegment{});
  std::vector<double> cell_errs(cells_.size(), 0.0);
  // Cells quantize independently; the per-cell codec is a pure function
  // of its rows, so the fan-out is bit-identical at any thread count.
  util::ThreadPool::Global().ParallelFor(cells_.size(), [&](size_t c) {
    const std::vector<size_t>& ids = cells_[c];
    CellSegment& seg = segments_[c];
    seg.mins.assign(dims_, 0.0);
    seg.steps.assign(dims_, 0.0);
    if (ids.empty()) return;
    const double* centroid = centroids_.data() + c * dims_;
    std::vector<double> lo(dims_, 0.0);
    std::vector<double> hi(dims_, 0.0);
    for (size_t r = 0; r < ids.size(); ++r) {
      const double* row = RowData(ids[r]);
      for (size_t d = 0; d < dims_; ++d) {
        const double res = row[d] - centroid[d];
        if (r == 0 || res < lo[d]) lo[d] = res;
        if (r == 0 || res > hi[d]) hi[d] = res;
      }
    }
    for (size_t d = 0; d < dims_; ++d) {
      seg.mins[d] = lo[d];
      const double step = (hi[d] - lo[d]) / 255.0;
      seg.steps[d] = step > 0.0 ? step : 0.0;
    }
    seg.padded = RoundUp8(ids.size());
    seg.codes.assign(dims_ * seg.padded, 0);
    double max_err = 0.0;
    for (size_t r = 0; r < ids.size(); ++r) {
      const double* row = RowData(ids[r]);
      for (size_t d = 0; d < dims_; ++d) {
        const double res = row[d] - centroid[d];
        uint8_t code = 0;
        if (seg.steps[d] > 0.0) {
          long q = std::lround((res - seg.mins[d]) / seg.steps[d]);
          if (q < 0) q = 0;
          if (q > 255) q = 255;
          code = static_cast<uint8_t>(q);
        }
        seg.codes[d * seg.padded + r] = code;
        const double err = std::fabs(
            (seg.mins[d] + seg.steps[d] * static_cast<double>(code)) - res);
        if (err > max_err) max_err = err;
      }
    }
    cell_errs[c] = max_err;
  });
  double max_err = 0.0;
  for (double e : cell_errs) max_err = std::max(max_err, e);
  quantized_ = true;
  err_gauge->Set(max_err);
}

Result<std::vector<SearchHit>> SimIndex::TopK(
    const std::vector<double>& query, double query_sq_norm,
    const std::vector<size_t>& candidates, size_t k,
    const util::CancelToken* cancel) const {
  SearchScratch& scratch = GetScratch();
  std::vector<RankedSim>& ranked = scratch.exact;
  EnsureSize(&ranked, candidates.size());
  // Row norms were precomputed at Add time; the dot/norm split rounds
  // exactly like the fused BlockedCosine, so scores (and therefore hit
  // order) are unchanged from the full recompute.
  auto score = [&](size_t c) {
    const size_t id = candidates[c];
    ranked[c] = {CosineFromParts(BlockedDot(query.data(), RowData(id), dims_),
                                 query_sq_norm, row_sq_norms_[id]),
                 id};
  };
  if (candidates.size() >= kParallelScanThreshold) {
    // Pool lanes poll at block boundaries too: a cancelled block skips
    // its scoring work (the partial `ranked` is discarded below).
    util::ThreadPool::Global().ParallelFor(candidates.size(), [&](size_t c) {
      if (c % kCancelPollStride == 0 && util::Cancelled(cancel)) return;
      score(c);
    });
    if (util::Cancelled(cancel)) return CancelledStatus();
  } else {
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (c % kCancelPollStride == 0 && util::Cancelled(cancel)) {
        return CancelledStatus();
      }
      score(c);
    }
  }
  // Bounded selection instead of a full sort: nth_element partitions the
  // top k in O(n), then only those k are ordered.
  if (ranked.size() > k) {
    std::nth_element(ranked.begin(),
                     ranked.begin() + static_cast<ptrdiff_t>(k) - 1,
                     ranked.end());
    ranked.resize(k);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<SearchHit> hits;
  hits.reserve(ranked.size());
  for (const RankedSim& r : ranked) {
    hits.push_back({keys_[r.index], r.sim});
  }
  return hits;
}

Result<std::vector<SearchHit>> SimIndex::Search(
    const std::vector<double>& query, size_t k,
    const util::CancelToken* cancel) const {
  KGPIP_TRACE_SPAN("embed.index_search");
  static obs::Histogram* query_seconds =
      obs::MetricsRegistry::Global().GetHistogram("embed.index_query_seconds");
  static obs::Counter* cells_probed =
      obs::MetricsRegistry::Global().GetCounter("embed.index.cells_probed");
  static obs::Counter* candidates_scanned =
      obs::MetricsRegistry::Global().GetCounter(
          "embed.index.candidates_scanned");
  static obs::Counter* reranked =
      obs::MetricsRegistry::Global().GetCounter("embed.index.reranked");
  Stopwatch watch;
  struct RecordOnExit {
    obs::Histogram* hist;
    Stopwatch* watch;
    ~RecordOnExit() { hist->Record(watch->ElapsedSeconds()); }
  } record{query_seconds, &watch};
  if (keys_.empty()) return Status::FailedPrecondition("empty index");
  if (query.size() != dims_) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  if (util::Cancelled(cancel)) return CancelledStatus();
  const double q_sq = BlockedSquaredNorm(query.data(), dims_);
  SearchScratch& scratch = GetScratch();
  if (!built_ || cells_.empty()) {
    // Exact flat scan (also the fallback while un-built after Add).
    EnsureSize(&scratch.candidates, keys_.size());
    for (size_t i = 0; i < keys_.size(); ++i) scratch.candidates[i] = i;
    candidates_scanned->Increment(static_cast<int64_t>(keys_.size()));
    return TopK(query, q_sq, scratch.candidates, k, cancel);
  }
  // Probe the closest coarse cells. Centroid ranking is exact and reuses
  // the per-thread scratch instead of allocating per call.
  const size_t num_centroids = cells_.size();
  EnsureSize(&scratch.cell_ranked, num_centroids);
  for (size_t c = 0; c < num_centroids; ++c) {
    scratch.cell_ranked[c] = {
        CosineFromParts(
            BlockedDot(query.data(), centroids_.data() + c * dims_, dims_),
            q_sq, centroid_sq_norms_[c]),
        c};
  }
  std::sort(scratch.cell_ranked.begin(), scratch.cell_ranked.end());
  const size_t probes = std::min<size_t>(
      static_cast<size_t>(std::max(1, options_.num_probes)), num_centroids);
  cells_probed->Increment(static_cast<int64_t>(probes));
  if (!quantized_) {
    EnsureSize(&scratch.candidates, 0);
    size_t out_n = 0;
    for (size_t p = 0; p < probes; ++p) {
      const std::vector<size_t>& ids = cells_[scratch.cell_ranked[p].index];
      EnsureSize(&scratch.candidates, out_n + ids.size());
      for (size_t i : ids) scratch.candidates[out_n++] = i;
    }
    candidates_scanned->Increment(static_cast<int64_t>(out_n));
    return TopK(query, q_sq, scratch.candidates, k, cancel);
  }
  // Quantized scan: per probed cell, the approximate dot against row r
  // decomposes over the residual codec —
  //   dot(q, row) ~= dot(q, centroid) + dot(q, mins)
  //                  + sum_d (q[d] * step[d]) * code[d][r]
  // — and the code sum is the SQ8 kernel. Scores are a pure function of
  // (query, segment) and the kernel is bitwise ISA-invariant, so the
  // candidate set is identical everywhere; the exact rerank then pins
  // the final order.
  const double q_inv = q_sq > 0.0 ? 1.0 / std::sqrt(q_sq) : 0.0;
  EnsureSize(&scratch.weights, dims_);
  EnsureSize(&scratch.approx, 0);
  const nn::simd::Isa isa = nn::simd::ActiveIsa();
  size_t out_n = 0;
  for (size_t p = 0; p < probes; ++p) {
    if (util::Cancelled(cancel)) return CancelledStatus();
    const size_t cell = scratch.cell_ranked[p].index;
    const std::vector<size_t>& ids = cells_[cell];
    const CellSegment& seg = segments_[cell];
    if (ids.empty()) continue;
    const double* centroid = centroids_.data() + cell * dims_;
    const double base = BlockedDot(query.data(), centroid, dims_) +
                        BlockedDot(query.data(), seg.mins.data(), dims_);
    for (size_t d = 0; d < dims_; ++d) {
      scratch.weights[d] = query[d] * seg.steps[d];
    }
    EnsureSize(&scratch.scores, seg.padded);
    std::fill(scratch.scores.begin(), scratch.scores.begin() + seg.padded,
              0.0);
    nn::simd::Sq8DotAccum(isa, seg.codes.data(), seg.padded,
                          scratch.weights.data(), dims_,
                          scratch.scores.data());
    EnsureSize(&scratch.approx, out_n + ids.size());
    for (size_t r = 0; r < ids.size(); ++r) {
      const size_t id = ids[r];
      scratch.approx[out_n++] = {
          (base + scratch.scores[r]) * row_inv_norms_[id] * q_inv, id};
    }
  }
  candidates_scanned->Increment(static_cast<int64_t>(out_n));
  if (out_n == 0) return std::vector<SearchHit>{};
  const size_t rerank = std::min<size_t>(
      std::max<size_t>(static_cast<size_t>(std::max(1, options_.rerank_k)),
                       k),
      out_n);
  if (out_n > rerank) {
    std::nth_element(scratch.approx.begin(),
                     scratch.approx.begin() + static_cast<ptrdiff_t>(rerank) -
                         1,
                     scratch.approx.begin() + static_cast<ptrdiff_t>(out_n));
  }
  reranked->Increment(static_cast<int64_t>(rerank));
  // Exact rerank over the retained f64 rows; sorting by (exact sim, id)
  // erases whatever order nth_element left the candidates in.
  std::vector<RankedSim>& exact = scratch.exact;
  EnsureSize(&exact, rerank);
  for (size_t i = 0; i < rerank; ++i) {
    if (i % kCancelPollStride == 0 && util::Cancelled(cancel)) {
      return CancelledStatus();
    }
    const size_t id = scratch.approx[i].index;
    exact[i] = {CosineFromParts(BlockedDot(query.data(), RowData(id), dims_),
                                q_sq, row_sq_norms_[id]),
                id};
  }
  std::sort(exact.begin(), exact.end());
  const size_t out_k = std::min(k, rerank);
  std::vector<SearchHit> hits;
  hits.reserve(out_k);
  for (size_t i = 0; i < out_k; ++i) {
    hits.push_back({keys_[exact[i].index], exact[i].sim});
  }
  return hits;
}

Result<std::vector<std::vector<SearchHit>>> SimIndex::SearchBatch(
    const std::vector<std::vector<double>>& queries, size_t k,
    const util::CancelToken* cancel) const {
  KGPIP_TRACE_SPAN("embed.index_search_batch");
  util::ThreadPool& pool = util::ThreadPool::Global();
  std::vector<std::vector<SearchHit>> out(queries.size());
  std::vector<Status> statuses(queries.size(), Status::Ok());
  pool.ParallelFor(queries.size(), [&](size_t q) {
    // Per-query poll: queries not yet started when the token flips are
    // skipped outright instead of each scanning to completion.
    Result<std::vector<SearchHit>> r = Search(queries[q], k, cancel);
    if (r.ok()) {
      out[q] = std::move(*r);
    } else {
      statuses[q] = r.status();
    }
  });
  // Lowest-index failure wins, independent of which lane hit it first.
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return out;
}

Status SimIndex::SaveSegments(const std::string& path) const {
  static obs::Histogram* save_seconds =
      obs::MetricsRegistry::Global().GetHistogram(
          "embed.index.segment_save_seconds");
  Stopwatch watch;
  if (!built_) {
    return Status::FailedPrecondition(
        "SaveSegments requires a built index (call Build first)");
  }
  std::string payload;
  const size_t n = keys_.size();
  AppendU64(&payload, dims_);
  AppendU64(&payload, n);
  AppendU64(&payload, cells_.size());
  AppendU64(&payload, quantized_ ? 1 : 0);
  for (const std::string& key : keys_) {
    AppendU64(&payload, key.size());
    payload.append(key);
  }
  AppendF64s(&payload, data_.data(), data_.size());
  AppendF64s(&payload, row_sq_norms_.data(), row_sq_norms_.size());
  if (!cells_.empty()) {
    AppendF64s(&payload, centroids_.data(), centroids_.size());
    AppendF64s(&payload, centroid_sq_norms_.data(),
               centroid_sq_norms_.size());
    for (const std::vector<size_t>& ids : cells_) {
      AppendU64(&payload, ids.size());
      for (size_t id : ids) AppendU64(&payload, id);
    }
    if (quantized_) {
      for (const CellSegment& seg : segments_) {
        AppendF64s(&payload, seg.mins.data(), seg.mins.size());
        AppendF64s(&payload, seg.steps.data(), seg.steps.size());
        AppendU64(&payload, seg.padded);
        payload.append(reinterpret_cast<const char*>(seg.codes.data()),
                       seg.codes.size());
      }
    }
  }
  const std::string header =
      StrFormat("%s %u %016llx %llu\n", kSegmentMagic, kSegmentVersion,
                static_cast<unsigned long long>(Fnv1a64(payload)),
                static_cast<unsigned long long>(payload.size()));
  // Temp-then-rename: a crash mid-write leaves the previous segment (or
  // nothing) on disk, never a torn file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open '" + tmp + "' for write");
    out << header << payload;
    out.flush();
    if (!out) return Status::IoError("write failed for '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename '" + tmp + "' -> '" + path + "' failed");
  }
  save_seconds->Record(watch.ElapsedSeconds());
  return Status::Ok();
}

Status SimIndex::LoadSegments(const std::string& path) {
  static obs::Histogram* load_seconds =
      obs::MetricsRegistry::Global().GetHistogram(
          "embed.index.segment_load_seconds");
  static obs::Gauge* size_gauge =
      obs::MetricsRegistry::Global().GetGauge("embed.index.size");
  static obs::Gauge* cells_gauge =
      obs::MetricsRegistry::Global().GetGauge("embed.index.cells");
  static obs::Gauge* quantized_gauge =
      obs::MetricsRegistry::Global().GetGauge("embed.index.quantized");
  Stopwatch watch;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();

  if (!StartsWith(contents, std::string(kSegmentMagic) + " ")) {
    return Status::ParseError(StrFormat(
        "segment '%s': bad magic in bytes [0, %llu)", path.c_str(),
        static_cast<unsigned long long>(
            std::min<size_t>(contents.size(), sizeof(kSegmentMagic)))));
  }
  const size_t eol = contents.find('\n');
  if (eol == std::string::npos) {
    return Status::ParseError(StrFormat(
        "segment '%s': unterminated header in the first %llu bytes",
        path.c_str(), static_cast<unsigned long long>(contents.size())));
  }
  unsigned version = 0;
  unsigned long long checksum = 0, declared = 0;
  if (std::sscanf(contents.c_str(), "KGSEG1 %u %16llx %llu", &version,
                  &checksum, &declared) != 3) {
    return Status::ParseError(
        StrFormat("segment '%s': malformed header in bytes [0, %llu)",
                  path.c_str(), static_cast<unsigned long long>(eol)));
  }
  if (version != kSegmentVersion) {
    return Status::ParseError(StrFormat(
        "segment '%s': unsupported format version %u (supported: %u)",
        path.c_str(), version, kSegmentVersion));
  }
  const size_t payload_offset = eol + 1;
  const std::string payload = contents.substr(payload_offset);
  if (payload.size() != declared) {
    return Status::ParseError(StrFormat(
        "segment '%s': truncated or padded payload — header declares %llu "
        "bytes but %llu are present after byte offset %llu",
        path.c_str(), declared,
        static_cast<unsigned long long>(payload.size()),
        static_cast<unsigned long long>(payload_offset)));
  }
  const uint64_t actual = Fnv1a64(payload);
  if (actual != checksum) {
    return Status::ParseError(StrFormat(
        "segment '%s': checksum mismatch over payload bytes [%llu, %llu) — "
        "expected %016llx, got %016llx",
        path.c_str(), static_cast<unsigned long long>(payload_offset),
        static_cast<unsigned long long>(payload_offset + payload.size()),
        checksum, static_cast<unsigned long long>(actual)));
  }

  // Parse into a fresh index; *this is replaced only on full success, so
  // a corrupt file can never leave a half-loaded index serving queries.
  SimIndex fresh(options_);
  SegmentReader r{payload, path, payload_offset};
  uint64_t dims = 0, n = 0, num_cells = 0, quantized = 0;
  KGPIP_RETURN_IF_ERROR(r.ReadU64(&dims));
  KGPIP_RETURN_IF_ERROR(r.ReadU64(&n));
  KGPIP_RETURN_IF_ERROR(r.ReadU64(&num_cells));
  KGPIP_RETURN_IF_ERROR(r.ReadU64(&quantized));
  if ((n > 0 && dims == 0) || quantized > 1 || num_cells > n ||
      (dims > 0 && n > payload.size() / dims)) {
    return Status::ParseError(StrFormat(
        "segment '%s': implausible geometry (dims=%llu rows=%llu "
        "cells=%llu quantized=%llu) in bytes [%llu, %llu)",
        path.c_str(), static_cast<unsigned long long>(dims),
        static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(num_cells),
        static_cast<unsigned long long>(quantized),
        static_cast<unsigned long long>(payload_offset),
        static_cast<unsigned long long>(payload_offset + 32)));
  }
  fresh.dims_ = dims;
  fresh.keys_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t len = 0;
    KGPIP_RETURN_IF_ERROR(r.ReadU64(&len));
    if (payload.size() - r.pos < len) return r.Truncated(len);
    fresh.keys_.emplace_back(payload.data() + r.pos, len);
    r.pos += len;
  }
  KGPIP_RETURN_IF_ERROR(r.ReadF64s(&fresh.data_, n * dims));
  KGPIP_RETURN_IF_ERROR(r.ReadF64s(&fresh.row_sq_norms_, n));
  fresh.row_inv_norms_.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    const double sq = fresh.row_sq_norms_[i];
    fresh.row_inv_norms_[i] = sq > 0.0 ? 1.0 / std::sqrt(sq) : 0.0;
  }
  if (num_cells > 0) {
    KGPIP_RETURN_IF_ERROR(r.ReadF64s(&fresh.centroids_, num_cells * dims));
    KGPIP_RETURN_IF_ERROR(
        r.ReadF64s(&fresh.centroid_sq_norms_, num_cells));
    fresh.cells_.resize(num_cells);
    std::vector<uint8_t> seen(n, 0);
    uint64_t assigned = 0;
    for (uint64_t c = 0; c < num_cells; ++c) {
      uint64_t count = 0;
      KGPIP_RETURN_IF_ERROR(r.ReadU64(&count));
      if (count > n - assigned) {
        return Status::ParseError(StrFormat(
            "segment '%s': cell %llu declares %llu rows at byte offset "
            "%llu but only %llu remain unassigned",
            path.c_str(), static_cast<unsigned long long>(c),
            static_cast<unsigned long long>(count),
            static_cast<unsigned long long>(payload_offset + r.pos),
            static_cast<unsigned long long>(n - assigned)));
      }
      fresh.cells_[c].resize(count);
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t id = 0;
        KGPIP_RETURN_IF_ERROR(r.ReadU64(&id));
        if (id >= n || seen[id]) {
          return Status::ParseError(StrFormat(
              "segment '%s': cell %llu holds invalid or duplicate row id "
              "%llu near byte offset %llu",
              path.c_str(), static_cast<unsigned long long>(c),
              static_cast<unsigned long long>(id),
              static_cast<unsigned long long>(payload_offset + r.pos)));
        }
        seen[id] = 1;
        fresh.cells_[c][i] = id;
      }
      assigned += count;
    }
    if (assigned != n) {
      return Status::ParseError(StrFormat(
          "segment '%s': cells assign %llu of %llu rows (not a partition)",
          path.c_str(), static_cast<unsigned long long>(assigned),
          static_cast<unsigned long long>(n)));
    }
    if (quantized != 0) {
      fresh.segments_.resize(num_cells);
      for (uint64_t c = 0; c < num_cells; ++c) {
        CellSegment& seg = fresh.segments_[c];
        KGPIP_RETURN_IF_ERROR(r.ReadF64s(&seg.mins, dims));
        KGPIP_RETURN_IF_ERROR(r.ReadF64s(&seg.steps, dims));
        uint64_t padded = 0;
        KGPIP_RETURN_IF_ERROR(r.ReadU64(&padded));
        const uint64_t expect =
            fresh.cells_[c].empty() ? 0 : RoundUp8(fresh.cells_[c].size());
        if (padded != expect) {
          return Status::ParseError(StrFormat(
              "segment '%s': cell %llu declares padded row count %llu at "
              "byte offset %llu (expected %llu)",
              path.c_str(), static_cast<unsigned long long>(c),
              static_cast<unsigned long long>(padded),
              static_cast<unsigned long long>(payload_offset + r.pos - 8),
              static_cast<unsigned long long>(expect)));
        }
        seg.padded = padded;
        const size_t code_bytes = static_cast<size_t>(dims) * padded;
        if (payload.size() - r.pos < code_bytes) {
          return r.Truncated(code_bytes);
        }
        seg.codes.resize(code_bytes);
        std::memcpy(seg.codes.data(), payload.data() + r.pos, code_bytes);
        r.pos += code_bytes;
      }
      fresh.quantized_ = true;
    }
  }
  if (r.pos != payload.size()) {
    return Status::ParseError(StrFormat(
        "segment '%s': %llu trailing bytes after byte offset %llu",
        path.c_str(),
        static_cast<unsigned long long>(payload.size() - r.pos),
        static_cast<unsigned long long>(payload_offset + r.pos)));
  }
  fresh.built_ = true;
  *this = std::move(fresh);
  size_gauge->Set(static_cast<double>(keys_.size()));
  cells_gauge->Set(static_cast<double>(cells_.size()));
  quantized_gauge->Set(quantized_ ? 1.0 : 0.0);
  load_seconds->Record(watch.ElapsedSeconds());
  return Status::Ok();
}

}  // namespace kgpip::embed
