#include "embed/sim_index.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace kgpip::embed {

namespace {

/// Candidate scoring fans out once the scan is big enough to amortize
/// dispatch; below this the inline path wins.
constexpr size_t kParallelScanThreshold = 2048;

/// Candidates scored between cancellation polls. Small enough that a
/// deadline-exceeded request stops within microseconds of cancellation,
/// large enough that the relaxed atomic load is amortized away.
constexpr size_t kCancelPollStride = 512;

Status CancelledStatus() {
  return Status::ResourceExhausted(
      "similarity search cancelled (deadline exceeded)");
}

/// Ranking comparator: similarity descending, insertion index ascending.
/// The index tie-break pins an order std::sort left unspecified, so the
/// top-k selection, the full-sort reference, and any platform agree.
struct RankedSim {
  double sim;
  size_t index;
  bool operator<(const RankedSim& other) const {
    if (sim != other.sim) return sim > other.sim;
    return index < other.index;
  }
};

}  // namespace

double BlockedCosine(const double* a, const double* b, size_t dims) {
  double d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
  double na0 = 0.0, na1 = 0.0, na2 = 0.0, na3 = 0.0;
  double nb0 = 0.0, nb1 = 0.0, nb2 = 0.0, nb3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= dims; i += 4) {
    d0 += a[i] * b[i];
    d1 += a[i + 1] * b[i + 1];
    d2 += a[i + 2] * b[i + 2];
    d3 += a[i + 3] * b[i + 3];
    na0 += a[i] * a[i];
    na1 += a[i + 1] * a[i + 1];
    na2 += a[i + 2] * a[i + 2];
    na3 += a[i + 3] * a[i + 3];
    nb0 += b[i] * b[i];
    nb1 += b[i + 1] * b[i + 1];
    nb2 += b[i + 2] * b[i + 2];
    nb3 += b[i + 3] * b[i + 3];
  }
  for (; i < dims; ++i) {
    d0 += a[i] * b[i];
    na0 += a[i] * a[i];
    nb0 += b[i] * b[i];
  }
  const double dot = (d0 + d1) + (d2 + d3);
  const double na = (na0 + na1) + (na2 + na3);
  const double nb = (nb0 + nb1) + (nb2 + nb3);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

SimIndex::SimIndex() : SimIndex(Options()) {}
SimIndex::SimIndex(Options options) : options_(options) {}

Status SimIndex::Add(const std::string& key, std::vector<double> vector) {
  if (keys_.empty()) {
    dims_ = vector.size();
  } else if (vector.size() != dims_) {
    return Status::InvalidArgument(
        "vector dimensionality mismatch for key '" + key + "'");
  }
  keys_.push_back(key);
  data_.insert(data_.end(), vector.begin(), vector.end());
  built_ = false;
  return Status::Ok();
}

Status SimIndex::Build() {
  KGPIP_TRACE_SPAN("embed.index_build");
  static obs::Histogram* build_seconds =
      obs::MetricsRegistry::Global().GetHistogram("embed.index_build_seconds");
  Stopwatch watch;
  const size_t n = keys_.size();
  if (options_.num_cells <= 0 || n == 0) {
    built_ = true;
    build_seconds->Record(watch.ElapsedSeconds());
    return Status::Ok();
  }
  const size_t k =
      std::min<size_t>(static_cast<size_t>(options_.num_cells), n);
  Rng rng(options_.seed);
  // k-means++ style init: random distinct picks.
  std::vector<size_t> picks = rng.Permutation(n);
  centroids_.assign(k * dims_, 0.0);
  for (size_t c = 0; c < k; ++c) {
    std::copy(RowData(picks[c]), RowData(picks[c]) + dims_,
              centroids_.data() + c * dims_);
  }
  std::vector<size_t> assignment(n, 0);
  util::ThreadPool& pool = util::ThreadPool::Global();
  for (int iter = 0; iter < 12; ++iter) {
    // Assignment is embarrassingly parallel: each item writes only its
    // own slot, and the best-centroid argmax is a pure function of the
    // (fixed) centroid buffer — bit-identical at any thread count.
    pool.ParallelFor(n, [&](size_t i) {
      const double* row = RowData(i);
      double best = -2.0;
      size_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        double sim = BlockedCosine(row, centroids_.data() + c * dims_,
                                   dims_);
        if (sim > best) {
          best = sim;
          best_c = c;
        }
      }
      assignment[i] = best_c;
    });
    // Centroid update stays serial and index-ordered so the summation
    // order (and therefore the rounded centroids) is fixed.
    std::fill(centroids_.begin(), centroids_.end(), 0.0);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      ++counts[assignment[i]];
      const double* row = RowData(i);
      double* centroid = centroids_.data() + assignment[i] * dims_;
      for (size_t d = 0; d < dims_; ++d) centroid[d] += row[d];
    }
    for (size_t c = 0; c < k; ++c) {
      double* centroid = centroids_.data() + c * dims_;
      if (counts[c] == 0) {
        const double* row = RowData(rng.UniformInt(n));
        std::copy(row, row + dims_, centroid);
        continue;
      }
      for (size_t d = 0; d < dims_; ++d) {
        centroid[d] /= static_cast<double>(counts[c]);
      }
    }
  }
  cells_.assign(k, {});
  for (size_t i = 0; i < n; ++i) cells_[assignment[i]].push_back(i);
  built_ = true;
  build_seconds->Record(watch.ElapsedSeconds());
  return Status::Ok();
}

Result<std::vector<SearchHit>> SimIndex::TopK(
    const std::vector<double>& query,
    const std::vector<size_t>& candidates, size_t k,
    const util::CancelToken* cancel) const {
  std::vector<RankedSim> ranked(candidates.size());
  auto score = [&](size_t c) {
    ranked[c] = {BlockedCosine(query.data(), RowData(candidates[c]), dims_),
                 candidates[c]};
  };
  if (candidates.size() >= kParallelScanThreshold) {
    // Pool lanes poll at block boundaries too: a cancelled block skips
    // its scoring work (the partial `ranked` is discarded below).
    util::ThreadPool::Global().ParallelFor(candidates.size(), [&](size_t c) {
      if (c % kCancelPollStride == 0 && util::Cancelled(cancel)) return;
      score(c);
    });
    if (util::Cancelled(cancel)) return CancelledStatus();
  } else {
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (c % kCancelPollStride == 0 && util::Cancelled(cancel)) {
        return CancelledStatus();
      }
      score(c);
    }
  }
  // Bounded selection instead of a full sort: nth_element partitions the
  // top k in O(n), then only those k are ordered.
  if (ranked.size() > k) {
    std::nth_element(ranked.begin(),
                     ranked.begin() + static_cast<ptrdiff_t>(k) - 1,
                     ranked.end());
    ranked.resize(k);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<SearchHit> hits;
  hits.reserve(ranked.size());
  for (const RankedSim& r : ranked) {
    hits.push_back({keys_[r.index], r.sim});
  }
  return hits;
}

Result<std::vector<SearchHit>> SimIndex::Search(
    const std::vector<double>& query, size_t k,
    const util::CancelToken* cancel) const {
  KGPIP_TRACE_SPAN("embed.index_search");
  static obs::Histogram* query_seconds =
      obs::MetricsRegistry::Global().GetHistogram("embed.index_query_seconds");
  Stopwatch watch;
  struct RecordOnExit {
    obs::Histogram* hist;
    Stopwatch* watch;
    ~RecordOnExit() { hist->Record(watch->ElapsedSeconds()); }
  } record{query_seconds, &watch};
  if (keys_.empty()) return Status::FailedPrecondition("empty index");
  if (query.size() != dims_) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  if (util::Cancelled(cancel)) return CancelledStatus();
  std::vector<size_t> candidates;
  if (options_.num_cells > 0 && built_ && !cells_.empty()) {
    // Probe the closest coarse cells.
    const size_t num_centroids = cells_.size();
    std::vector<RankedSim> cell_sims(num_centroids);
    for (size_t c = 0; c < num_centroids; ++c) {
      cell_sims[c] = {
          BlockedCosine(query.data(), centroids_.data() + c * dims_, dims_),
          c};
    }
    std::sort(cell_sims.begin(), cell_sims.end());
    size_t probes = std::min<size_t>(
        static_cast<size_t>(std::max(1, options_.num_probes)),
        cell_sims.size());
    for (size_t p = 0; p < probes; ++p) {
      for (size_t i : cells_[cell_sims[p].index]) {
        candidates.push_back(i);
      }
    }
  } else {
    candidates.resize(keys_.size());
    for (size_t i = 0; i < keys_.size(); ++i) candidates[i] = i;
  }
  return TopK(query, candidates, k, cancel);
}

Result<std::vector<std::vector<SearchHit>>> SimIndex::SearchBatch(
    const std::vector<std::vector<double>>& queries, size_t k,
    const util::CancelToken* cancel) const {
  KGPIP_TRACE_SPAN("embed.index_search_batch");
  util::ThreadPool& pool = util::ThreadPool::Global();
  std::vector<std::vector<SearchHit>> out(queries.size());
  std::vector<Status> statuses(queries.size(), Status::Ok());
  pool.ParallelFor(queries.size(), [&](size_t q) {
    // Per-query poll: queries not yet started when the token flips are
    // skipped outright instead of each scanning to completion.
    Result<std::vector<SearchHit>> r = Search(queries[q], k, cancel);
    if (r.ok()) {
      out[q] = std::move(*r);
    } else {
      statuses[q] = r.status();
    }
  });
  // Lowest-index failure wins, independent of which lane hit it first.
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return out;
}

}  // namespace kgpip::embed
