#include "embed/sim_index.h"

#include <algorithm>
#include <cmath>

#include "embed/embedder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace kgpip::embed {

SimIndex::SimIndex() : SimIndex(Options()) {}
SimIndex::SimIndex(Options options) : options_(options) {}

Status SimIndex::Add(const std::string& key, std::vector<double> vector) {
  if (!vectors_.empty() && vector.size() != vectors_[0].size()) {
    return Status::InvalidArgument(
        "vector dimensionality mismatch for key '" + key + "'");
  }
  keys_.push_back(key);
  vectors_.push_back(std::move(vector));
  built_ = false;
  return Status::Ok();
}

Status SimIndex::Build() {
  KGPIP_TRACE_SPAN("embed.index_build");
  static obs::Histogram* build_seconds =
      obs::MetricsRegistry::Global().GetHistogram("embed.index_build_seconds");
  Stopwatch watch;
  if (options_.num_cells <= 0 || vectors_.empty()) {
    built_ = true;
    build_seconds->Record(watch.ElapsedSeconds());
    return Status::Ok();
  }
  const size_t k = std::min<size_t>(
      static_cast<size_t>(options_.num_cells), vectors_.size());
  const size_t dims = vectors_[0].size();
  Rng rng(options_.seed);
  // k-means++ style init: random distinct picks.
  std::vector<size_t> picks = rng.Permutation(vectors_.size());
  centroids_.assign(k, std::vector<double>(dims, 0.0));
  for (size_t c = 0; c < k; ++c) centroids_[c] = vectors_[picks[c]];
  std::vector<size_t> assignment(vectors_.size(), 0);
  for (int iter = 0; iter < 12; ++iter) {
    for (size_t i = 0; i < vectors_.size(); ++i) {
      double best = -2.0;
      size_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        double sim = TableEmbedder::Cosine(vectors_[i], centroids_[c]);
        if (sim > best) {
          best = sim;
          best_c = c;
        }
      }
      assignment[i] = best_c;
    }
    for (auto& centroid : centroids_) {
      std::fill(centroid.begin(), centroid.end(), 0.0);
    }
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < vectors_.size(); ++i) {
      ++counts[assignment[i]];
      for (size_t d = 0; d < dims; ++d) {
        centroids_[assignment[i]][d] += vectors_[i][d];
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        centroids_[c] = vectors_[rng.UniformInt(vectors_.size())];
        continue;
      }
      for (double& d : centroids_[c]) d /= static_cast<double>(counts[c]);
    }
  }
  cells_.assign(k, {});
  for (size_t i = 0; i < vectors_.size(); ++i) {
    cells_[assignment[i]].push_back(i);
  }
  built_ = true;
  build_seconds->Record(watch.ElapsedSeconds());
  return Status::Ok();
}

Result<std::vector<SearchHit>> SimIndex::Search(
    const std::vector<double>& query, size_t k) const {
  static obs::Histogram* query_seconds =
      obs::MetricsRegistry::Global().GetHistogram("embed.index_query_seconds");
  Stopwatch watch;
  struct RecordOnExit {
    obs::Histogram* hist;
    Stopwatch* watch;
    ~RecordOnExit() { hist->Record(watch->ElapsedSeconds()); }
  } record{query_seconds, &watch};
  if (vectors_.empty()) return Status::FailedPrecondition("empty index");
  if (query.size() != vectors_[0].size()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  std::vector<size_t> candidates;
  if (options_.num_cells > 0 && built_ && !cells_.empty()) {
    // Probe the closest coarse cells.
    std::vector<std::pair<double, size_t>> cell_sims;
    for (size_t c = 0; c < centroids_.size(); ++c) {
      cell_sims.emplace_back(TableEmbedder::Cosine(query, centroids_[c]),
                             c);
    }
    std::sort(cell_sims.rbegin(), cell_sims.rend());
    size_t probes = std::min<size_t>(
        static_cast<size_t>(std::max(1, options_.num_probes)),
        cell_sims.size());
    for (size_t p = 0; p < probes; ++p) {
      for (size_t i : cells_[cell_sims[p].second]) {
        candidates.push_back(i);
      }
    }
  } else {
    candidates.resize(vectors_.size());
    for (size_t i = 0; i < vectors_.size(); ++i) candidates[i] = i;
  }
  std::vector<SearchHit> hits;
  hits.reserve(candidates.size());
  for (size_t i : candidates) {
    hits.push_back({keys_[i], TableEmbedder::Cosine(query, vectors_[i])});
  }
  std::sort(hits.begin(), hits.end(),
            [](const SearchHit& a, const SearchHit& b) {
              return a.similarity > b.similarity;
            });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

}  // namespace kgpip::embed
