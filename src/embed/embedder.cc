#include "embed/embedder.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace kgpip::embed {

namespace {

constexpr size_t kShapeBlock = 0;    // 12 dims
constexpr size_t kTargetBlock = 12;  // 8 dims
constexpr size_t kNumericBlock = 20; // 8 dims
constexpr size_t kNameBlock = 28;    // 16 dims
constexpr size_t kContentBlock = 44; // 16 dims
constexpr size_t kNameBlockDims = 16;
constexpr size_t kContentBlockDims = 16;

double SignedLog(double x) {
  return x >= 0.0 ? std::log1p(x) : -std::log1p(-x);
}

/// Basic moments of the non-missing values of a numeric column.
struct Moments {
  double mean = 0.0;
  double stddev = 0.0;
  double skew = 0.0;
  size_t count = 0;
};

Moments ComputeMoments(const Column& col) {
  Moments m;
  for (size_t r = 0; r < col.size(); ++r) {
    if (col.IsMissing(r)) continue;
    m.mean += col.NumericAt(r);
    ++m.count;
  }
  if (m.count == 0) return m;
  m.mean /= static_cast<double>(m.count);
  double m2 = 0.0, m3 = 0.0;
  for (size_t r = 0; r < col.size(); ++r) {
    if (col.IsMissing(r)) continue;
    double d = col.NumericAt(r) - m.mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(m.count);
  m3 /= static_cast<double>(m.count);
  m.stddev = std::sqrt(m2);
  m.skew = m2 > 1e-12 ? m3 / std::pow(m2, 1.5) : 0.0;
  return m;
}

/// Pearson correlation of a numeric column with an encoded target.
double CorrWithTarget(const Column& col, const std::vector<double>& target) {
  double mx = 0.0, my = 0.0;
  size_t n = 0;
  for (size_t r = 0; r < col.size(); ++r) {
    if (col.IsMissing(r)) continue;
    mx += col.NumericAt(r);
    my += target[r];
    ++n;
  }
  if (n < 3) return 0.0;
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t r = 0; r < col.size(); ++r) {
    if (col.IsMissing(r)) continue;
    double dx = col.NumericAt(r) - mx;
    double dy = target[r] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

/// Normalized mutual information between a quantile-binned feature and a
/// binned target (4x4 grid). Captures non-linear relationships the
/// correlation misses — this is what separates interaction-style datasets
/// from pure-noise ones.
double BinnedMutualInformation(const Column& col,
                               const std::vector<double>& target) {
  constexpr int kBins = 4;
  std::vector<std::pair<double, double>> rows;
  for (size_t r = 0; r < col.size(); ++r) {
    if (col.IsMissing(r)) continue;
    rows.emplace_back(col.NumericAt(r), target[r]);
  }
  if (rows.size() < 16) return 0.0;
  auto bin_of = [&](double v, std::vector<double>& sorted) {
    int b = 0;
    for (int c = 1; c < kBins; ++c) {
      if (v > sorted[sorted.size() * c / kBins]) b = c;
    }
    return b;
  };
  std::vector<double> xs, ys;
  for (const auto& [x, y] : rows) {
    xs.push_back(x);
    ys.push_back(y);
  }
  std::sort(xs.begin(), xs.end());
  std::sort(ys.begin(), ys.end());
  double joint[kBins][kBins] = {};
  double px[kBins] = {};
  double py[kBins] = {};
  for (const auto& [x, y] : rows) {
    int bx = bin_of(x, xs);
    int by = bin_of(y, ys);
    joint[bx][by] += 1.0;
    px[bx] += 1.0;
    py[by] += 1.0;
  }
  double n = static_cast<double>(rows.size());
  double mi = 0.0;
  for (int a = 0; a < kBins; ++a) {
    for (int b = 0; b < kBins; ++b) {
      if (joint[a][b] <= 0.0) continue;
      double pj = joint[a][b] / n;
      mi += pj * std::log(pj / ((px[a] / n) * (py[b] / n)));
    }
  }
  return mi / std::log(static_cast<double>(kBins));
}

void AddHashed(const std::string& token, double weight, double* block,
               size_t dims) {
  uint64_t h = Fnv1a64(token);
  size_t idx = h % dims;
  // Signed hashing reduces collisions' bias.
  double sign = (h >> 32) & 1 ? 1.0 : -1.0;
  block[idx] += sign * weight;
}

void AddNameNgrams(const std::string& name, double* block, size_t dims) {
  std::string padded = "^" + AsciiToLower(name) + "$";
  for (size_t i = 0; i + 3 <= padded.size(); ++i) {
    AddHashed(padded.substr(i, 3), 1.0, block, dims);
  }
}

void NormalizeBlock(double* block, size_t dims) {
  double norm = 0.0;
  for (size_t i = 0; i < dims; ++i) norm += block[i] * block[i];
  norm = std::sqrt(norm);
  if (norm < 1e-12) return;
  for (size_t i = 0; i < dims; ++i) block[i] /= norm;
}

}  // namespace

std::vector<double> TableEmbedder::Embed(const Table& table) const {
  static obs::Histogram* embed_seconds =
      obs::MetricsRegistry::Global().GetHistogram("embed.table_embed_seconds");
  Stopwatch watch;
  struct RecordOnExit {
    obs::Histogram* hist;
    Stopwatch* watch;
    ~RecordOnExit() { hist->Record(watch->ElapsedSeconds()); }
  } record{embed_seconds, &watch};
  std::vector<double> v(kDims, 0.0);
  const size_t rows = table.num_rows();
  const size_t cols = table.num_columns();
  if (rows == 0 || cols == 0) return v;

  // Encode the target for relationship features (class index or value).
  std::vector<double> target_encoded(rows, 0.0);
  bool have_target = false;
  double target_entropy = 0.0;
  double num_classes = 0.0;
  bool target_is_numeric = true;
  if (auto target = table.TargetColumn(); target.ok()) {
    have_target = true;
    const Column& t = **target;
    target_is_numeric = t.type() == ColumnType::kNumeric;
    if (target_is_numeric) {
      for (size_t r = 0; r < rows; ++r) {
        target_encoded[r] = t.IsMissing(r) ? 0.0 : t.NumericAt(r);
      }
    } else {
      std::map<std::string, int> levels;
      std::map<std::string, size_t> counts;
      for (size_t r = 0; r < rows; ++r) {
        if (t.IsMissing(r)) continue;
        auto [it, unused] =
            levels.emplace(t.StringAt(r), static_cast<int>(levels.size()));
        target_encoded[r] = it->second;
        ++counts[t.StringAt(r)];
      }
      num_classes = static_cast<double>(levels.size());
      for (const auto& [label, count] : counts) {
        double p = static_cast<double>(count) / static_cast<double>(rows);
        if (p > 0.0) target_entropy -= p * std::log(p);
      }
      if (num_classes > 1.0) target_entropy /= std::log(num_classes);
    }
  }

  // ---- Shape block ----
  size_t n_numeric = 0, n_categorical = 0, n_text = 0;
  size_t missing = 0;
  for (const Column& col : table.columns()) {
    if (col.name() == table.target_name()) continue;
    switch (col.type()) {
      case ColumnType::kNumeric:
        ++n_numeric;
        break;
      case ColumnType::kCategorical:
        ++n_categorical;
        break;
      case ColumnType::kText:
        ++n_text;
        break;
    }
    missing += col.MissingCount();
  }
  const double n_features =
      std::max<double>(1.0, static_cast<double>(cols) - 1.0);
  v[kShapeBlock + 0] = std::log1p(static_cast<double>(rows)) / 10.0;
  v[kShapeBlock + 1] = std::log1p(n_features) / 5.0;
  v[kShapeBlock + 2] = static_cast<double>(n_numeric) / n_features;
  v[kShapeBlock + 3] = static_cast<double>(n_categorical) / n_features;
  v[kShapeBlock + 4] = static_cast<double>(n_text) / n_features;
  v[kShapeBlock + 5] =
      static_cast<double>(missing) / (n_features * static_cast<double>(rows));
  v[kShapeBlock + 6] = target_is_numeric ? 1.0 : 0.0;
  v[kShapeBlock + 7] = num_classes > 0.0 ? std::log1p(num_classes) / 3.0
                                         : 0.0;
  v[kShapeBlock + 8] = target_entropy;
  v[kShapeBlock + 9] = num_classes == 2.0 ? 1.0 : 0.0;
  v[kShapeBlock + 10] = num_classes > 2.0 ? 1.0 : 0.0;
  v[kShapeBlock + 11] = n_text > 0 ? 1.0 : 0.0;

  // ---- Target-relationship + numeric blocks ----
  // Per-column statistics are independent, so they fan out over the pool;
  // each item writes only its own slot, keeping the resulting vectors in
  // column order regardless of thread count.
  std::vector<const Column*> numeric_columns;
  for (const Column& col : table.columns()) {
    if (col.name() == table.target_name()) continue;
    if (col.type() != ColumnType::kNumeric) continue;
    numeric_columns.push_back(&col);
  }
  std::vector<double> abs_corrs;
  std::vector<double> mis;
  if (have_target && !numeric_columns.empty()) {
    struct TargetStats {
      double abs_corr = 0.0;
      double mi = 0.0;
    };
    std::vector<TargetStats> stats =
        util::ThreadPool::Global().ParallelMap<TargetStats>(
            numeric_columns.size(), [&](size_t c) {
              const Column& col = *numeric_columns[c];
              return TargetStats{
                  std::fabs(CorrWithTarget(col, target_encoded)),
                  BinnedMutualInformation(col, target_encoded)};
            });
    abs_corrs.reserve(stats.size());
    mis.reserve(stats.size());
    for (const TargetStats& s : stats) {
      abs_corrs.push_back(s.abs_corr);
      mis.push_back(s.mi);
    }
  }
  auto top_mean = [](std::vector<double> values, size_t k) {
    if (values.empty()) return 0.0;
    std::sort(values.rbegin(), values.rend());
    k = std::min(k, values.size());
    double s = 0.0;
    for (size_t i = 0; i < k; ++i) s += values[i];
    return s / static_cast<double>(k);
  };
  if (!abs_corrs.empty()) {
    double max_corr = *std::max_element(abs_corrs.begin(), abs_corrs.end());
    double max_mi = *std::max_element(mis.begin(), mis.end());
    size_t strong_corr = 0, strong_mi = 0;
    for (double c : abs_corrs) {
      if (c > 0.2) ++strong_corr;
    }
    for (double m : mis) {
      if (m > 0.08) ++strong_mi;
    }
    v[kTargetBlock + 0] = max_corr;
    v[kTargetBlock + 1] = top_mean(abs_corrs, 3);
    v[kTargetBlock + 2] =
        static_cast<double>(strong_corr) / abs_corrs.size();
    v[kTargetBlock + 3] = max_mi;
    v[kTargetBlock + 4] = top_mean(mis, 3);
    v[kTargetBlock + 5] = static_cast<double>(strong_mi) / mis.size();
    // Interactions signature: information without linear correlation.
    v[kTargetBlock + 6] = std::max(0.0, max_mi - max_corr);
    v[kTargetBlock + 7] = max_corr > 0.0 ? max_mi / (max_corr + 0.1) / 5.0
                                         : max_mi;
  }

  if (!numeric_columns.empty()) {
    struct ColumnMoments {
      Moments m;
      double distinct_frac = 0.0;
    };
    std::vector<ColumnMoments> moments =
        util::ThreadPool::Global().ParallelMap<ColumnMoments>(
            numeric_columns.size(), [&](size_t c) {
              const Column& col = *numeric_columns[c];
              return ColumnMoments{
                  ComputeMoments(col),
                  static_cast<double>(col.DistinctCount()) /
                      static_cast<double>(rows)};
            });
    // Accumulate in column order so the floating-point sums are fixed.
    double mean_slog_mean = 0.0, mean_log_std = 0.0, mean_skew = 0.0,
           mean_distinct = 0.0;
    for (const ColumnMoments& cm : moments) {
      mean_slog_mean += SignedLog(cm.m.mean);
      mean_log_std += std::log1p(cm.m.stddev);
      mean_skew += cm.m.skew;
      mean_distinct += cm.distinct_frac;
    }
    const double nn = static_cast<double>(numeric_columns.size());
    v[kNumericBlock + 0] = mean_slog_mean / nn / 10.0;
    v[kNumericBlock + 1] = mean_log_std / nn / 8.0;
    v[kNumericBlock + 2] = std::tanh(mean_skew / nn);
    v[kNumericBlock + 3] = mean_distinct / nn;
    // Inter-feature correlation structure (sparse datasets stand apart).
    double mean_abs_corr = 0.0;
    size_t corr_pairs = 0, partnered = 0;
    const size_t probe = std::min<size_t>(numeric_columns.size(), 8);
    for (size_t a = 0; a < probe; ++a) {
      bool has_partner = false;
      for (size_t b = 0; b < probe; ++b) {
        if (a == b) continue;
        std::vector<double> other(rows, 0.0);
        for (size_t r = 0; r < rows; ++r) {
          other[r] = numeric_columns[b]->IsMissing(r)
                         ? 0.0
                         : numeric_columns[b]->NumericAt(r);
        }
        double c = std::fabs(CorrWithTarget(*numeric_columns[a], other));
        mean_abs_corr += c;
        ++corr_pairs;
        if (c > 0.3) has_partner = true;
      }
      if (has_partner) ++partnered;
    }
    v[kNumericBlock + 4] =
        corr_pairs > 0 ? mean_abs_corr / static_cast<double>(corr_pairs)
                       : 0.0;
    v[kNumericBlock + 5] =
        probe > 0 ? static_cast<double>(partnered) / static_cast<double>(probe)
                  : 0.0;
    v[kNumericBlock + 6] = std::log1p(nn) / 4.0;
    v[kNumericBlock + 7] = nn / n_features;
  }

  // ---- Name + content hash blocks ----
  for (const Column& col : table.columns()) {
    if (col.name() == table.target_name()) continue;
    AddNameNgrams(col.name(), v.data() + kNameBlock, kNameBlockDims);
    if (col.type() != ColumnType::kNumeric) {
      const size_t sample = std::min<size_t>(col.size(), 64);
      for (size_t r = 0; r < sample; ++r) {
        if (col.IsMissing(r)) continue;
        AddHashed(AsciiToLower(col.StringAt(r)), 1.0,
                  v.data() + kContentBlock, kContentBlockDims);
      }
    }
  }
  NormalizeBlock(v.data() + kNameBlock, kNameBlockDims);
  NormalizeBlock(v.data() + kContentBlock, kContentBlockDims);

  // Global L2 normalization for cosine search.
  double norm = 0.0;
  for (double x : v) norm += x * x;
  norm = std::sqrt(norm);
  if (norm > 1e-12) {
    for (double& x : v) x /= norm;
  }
  return v;
}

double TableEmbedder::Cosine(const std::vector<double>& a,
                             const std::vector<double>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace kgpip::embed
