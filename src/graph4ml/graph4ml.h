#ifndef KGPIP_GRAPH4ML_GRAPH4ML_H_
#define KGPIP_GRAPH4ML_GRAPH4ML_H_

#include <map>
#include <string>
#include <vector>

#include "codegraph/corpus.h"
#include "graph4ml/filter.h"
#include "util/json.h"
#include "util/status.h"

namespace kgpip::graph4ml {

/// The interconnected training structure of the paper (§3.4): every mined
/// ML pipeline, filtered and linked to its dataset node. "Conceptually
/// ... the graph generator functions like a database of datasets and their
/// associated pipelines" — this class is that database's storage layer.
class Graph4Ml {
 public:
  Graph4Ml() = default;

  /// Statically analyzes scripts, filters their code graphs, links each
  /// valid pipeline to its dataset, and accumulates mining statistics.
  Status Build(const std::vector<codegraph::NotebookScript>& scripts);

  /// Adds one pre-filtered pipeline (used by tests and loaders).
  void AddPipeline(PipelineGraph pipeline);

  /// Pipelines for one dataset (empty if unknown).
  const std::vector<PipelineGraph>& PipelinesFor(
      const std::string& dataset_name) const;

  /// All dataset names with at least one pipeline.
  std::vector<std::string> DatasetNames() const;

  /// Every stored pipeline.
  std::vector<const PipelineGraph*> AllPipelines() const;

  size_t NumPipelines() const;
  size_t NumDatasets() const { return by_dataset_.size(); }

  /// Scripts seen / scripts kept (the paper: 11.7K seen, 2,046 kept).
  size_t scripts_analyzed() const { return scripts_analyzed_; }
  size_t scripts_kept() const { return scripts_kept_; }
  const FilterStats& filter_stats() const { return filter_stats_; }

  /// Frequency of each canonical op across stored pipelines (Figure 9).
  std::map<std::string, size_t> OpHistogram() const;

  /// JSON (de)serialization of the full store.
  Json ToJson() const;
  static Result<Graph4Ml> FromJson(const Json& json);

 private:
  std::map<std::string, std::vector<PipelineGraph>> by_dataset_;
  size_t scripts_analyzed_ = 0;
  size_t scripts_kept_ = 0;
  FilterStats filter_stats_;
};

}  // namespace kgpip::graph4ml

#endif  // KGPIP_GRAPH4ML_GRAPH4ML_H_
