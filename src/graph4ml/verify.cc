#include "graph4ml/verify.h"

#include <string>

namespace kgpip::graph4ml {

namespace {

using codegraph::analysis::Diagnostic;
using codegraph::analysis::MakeError;

Diagnostic PipelineError(const PipelineGraph& pipeline, std::string code,
                         std::string message) {
  Diagnostic d = MakeError(std::move(code), std::move(message));
  d.subject = pipeline.script_name;
  return d;
}

}  // namespace

std::vector<Diagnostic> VerifyPipelineGraph(const PipelineGraph& pipeline) {
  std::vector<Diagnostic> diags;
  const TypedGraph& graph = pipeline.graph;
  const PipelineVocab& vocab = PipelineVocab::Get();
  const int n = static_cast<int>(graph.num_nodes());

  for (int i = 0; i < n; ++i) {
    int type = graph.node_types[static_cast<size_t>(i)];
    if (type < 0 || type >= vocab.size()) {
      diags.push_back(PipelineError(
          pipeline, "verify.unknown-node-type",
          "node #" + std::to_string(i) + " has type " + std::to_string(type) +
              " outside the vocabulary [0, " + std::to_string(vocab.size()) +
              ")"));
    }
  }

  bool edges_ok = true;
  for (size_t e = 0; e < graph.edges.size(); ++e) {
    const auto& [src, dst] = graph.edges[e];
    if (src < 0 || dst < 0 || src >= n || dst >= n) {
      edges_ok = false;
      diags.push_back(PipelineError(
          pipeline, "verify.edge-out-of-range",
          "edge #" + std::to_string(e) + " (" + std::to_string(src) +
              " -> " + std::to_string(dst) + ") leaves the node range [0, " +
              std::to_string(n) + ")"));
    } else if (src >= dst) {
      // The filter emits a forward chain; any non-forward edge (including
      // self-loops) breaks acyclicity.
      edges_ok = false;
      diags.push_back(PipelineError(
          pipeline, "verify.cycle",
          "edge #" + std::to_string(e) + " (" + std::to_string(src) +
              " -> " + std::to_string(dst) + ") is not forward"));
    }
  }

  if (n > 0 &&
      graph.node_types[0] != PipelineVocab::kDatasetType) {
    diags.push_back(PipelineError(
        pipeline, "verify.missing-dataset-anchor",
        "node #0 must be the dataset anchor, got type " +
            std::to_string(graph.node_types[0])));
  }
  if (edges_ok && graph.num_edges() != static_cast<size_t>(n > 0 ? n - 1 : 0)) {
    diags.push_back(PipelineError(
        pipeline, "verify.not-a-chain",
        "expected " + std::to_string(n > 0 ? n - 1 : 0) + " chain edges, got " +
            std::to_string(graph.num_edges())));
  }

  if (pipeline.valid() && n > 0) {
    int expected = vocab.TypeOf(pipeline.estimator);
    int last = graph.node_types[static_cast<size_t>(n - 1)];
    if (expected >= 0 && last != expected) {
      diags.push_back(PipelineError(
          pipeline, "verify.estimator-mismatch",
          "last node type " + std::to_string(last) +
              " does not match estimator '" + pipeline.estimator + "' (" +
              std::to_string(expected) + ")"));
    }
  }
  return diags;
}

}  // namespace kgpip::graph4ml
