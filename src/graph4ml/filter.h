#ifndef KGPIP_GRAPH4ML_FILTER_H_
#define KGPIP_GRAPH4ML_FILTER_H_

#include <string>
#include <vector>

#include "codegraph/code_graph.h"
#include "graph4ml/vocab.h"

namespace kgpip::graph4ml {

/// A filtered ML pipeline graph (paper §3.4 / Figure 4): a dataset anchor
/// node flowing into read_csv, then the transformers and estimator the
/// script applies, in program order. This is the >96%-smaller view fed to
/// the graph generator.
struct PipelineGraph {
  std::string dataset_name;
  std::string script_name;
  TypedGraph graph;  // types over PipelineVocab
  std::vector<std::string> transformers;  // canonical, in order
  std::string estimator;                  // canonical

  bool valid() const { return !estimator.empty(); }
};

/// Size accounting for the Table 3 ablation.
struct FilterStats {
  size_t raw_nodes = 0;
  size_t raw_edges = 0;
  size_t filtered_nodes = 0;
  size_t filtered_edges = 0;

  double NodeReduction() const {
    return raw_nodes == 0
               ? 0.0
               : 1.0 - static_cast<double>(filtered_nodes) /
                           static_cast<double>(raw_nodes);
  }
  double EdgeReduction() const {
    return raw_edges == 0
               ? 0.0
               : 1.0 - static_cast<double>(filtered_edges) /
                           static_cast<double>(raw_edges);
  }
};

/// Filters a raw code graph down to its ML pipeline. `fallback_dataset`
/// supplies the dataset association when the script loads an anonymous
/// file (e.g. read_csv('data.csv')). Returns an invalid PipelineGraph
/// (no estimator) for scripts without a supported ML pipeline.
PipelineGraph FilterCodeGraph(const codegraph::CodeGraph& code_graph,
                              const std::string& fallback_dataset,
                              FilterStats* stats = nullptr);

}  // namespace kgpip::graph4ml

#endif  // KGPIP_GRAPH4ML_FILTER_H_
