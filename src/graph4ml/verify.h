#ifndef KGPIP_GRAPH4ML_VERIFY_H_
#define KGPIP_GRAPH4ML_VERIFY_H_

#include <vector>

#include "codegraph/analysis/diagnostic.h"
#include "graph4ml/filter.h"

namespace kgpip::graph4ml {

/// Structural invariants of a filtered PipelineGraph:
///
///   * every node type is a valid PipelineVocab index;
///   * every edge's endpoints are in range;
///   * the graph is the chain the filter promises (node 0 is the dataset
///     anchor, exactly num_nodes - 1 edges, acyclic);
///   * when the pipeline is valid(), its last node is an estimator type
///     matching the `estimator` field.
///
/// Runs after every FilterCodeGraph when the CodeGraphVerifier toggle is
/// on (debug/test builds); violations indicate filter bugs, not bad
/// input scripts. Returns the violated invariants (empty = well-formed).
std::vector<codegraph::analysis::Diagnostic> VerifyPipelineGraph(
    const PipelineGraph& pipeline);

}  // namespace kgpip::graph4ml

#endif  // KGPIP_GRAPH4ML_VERIFY_H_
