#include "graph4ml/vocab.h"

#include <algorithm>

#include "codegraph/ml_api.h"

namespace kgpip::graph4ml {

PipelineVocab::PipelineVocab() {
  names_ = {"<dataset>", "read_csv"};
  is_estimator_ = {false, false};
  for (const codegraph::MlApiEntry& entry : codegraph::MlApiTable()) {
    if (std::find(names_.begin(), names_.end(), entry.canonical) !=
        names_.end()) {
      continue;
    }
    names_.push_back(entry.canonical);
    is_estimator_.push_back(entry.is_estimator);
  }
}

int PipelineVocab::TypeOf(const std::string& canonical) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == canonical) return static_cast<int>(i);
  }
  return -1;
}

const PipelineVocab& PipelineVocab::Get() {
  static const PipelineVocab& kVocab = *new PipelineVocab();
  return kVocab;
}

}  // namespace kgpip::graph4ml
