#include "graph4ml/graph4ml.h"

#include "codegraph/analyzer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace kgpip::graph4ml {

Status Graph4Ml::Build(
    const std::vector<codegraph::NotebookScript>& scripts) {
  KGPIP_TRACE_SPAN("graph4ml.build");
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  static obs::Counter* analyzed =
      metrics.GetCounter("graph4ml.scripts_analyzed");
  static obs::Counter* kept = metrics.GetCounter("graph4ml.scripts_kept");
  static obs::Counter* filter_rejected =
      metrics.GetCounter("graph4ml.filter_rejected");
  // Per-script analyze+filter is the pipeline-mining hot loop; each
  // script is independent, so it fans out over the pool. All mutation of
  // shared state (counters, stats, by_dataset_, warnings) happens in the
  // ordered merge below, keeping results and logs in script order.
  struct ScriptResult {
    Status analyze_status = Status::Ok();
    PipelineGraph pipeline;
    FilterStats stats;
  };
  std::vector<ScriptResult> results =
      util::ThreadPool::Global().ParallelMap<ScriptResult>(
          scripts.size(), [&](size_t i) {
            const codegraph::NotebookScript& script = scripts[i];
            ScriptResult r;
            auto code_graph =
                codegraph::AnalyzeScript(script.name, script.text);
            if (!code_graph.ok()) {
              r.analyze_status = code_graph.status();
              return r;
            }
            r.pipeline =
                FilterCodeGraph(*code_graph, script.dataset_name, &r.stats);
            return r;
          });
  for (size_t i = 0; i < results.size(); ++i) {
    ScriptResult& r = results[i];
    ++scripts_analyzed_;
    analyzed->Increment();
    if (!r.analyze_status.ok()) {
      // Real-world mining skips unparseable scripts rather than failing
      // the whole corpus. Rejections are counted per status code so the
      // metrics snapshot says *why* graphs were dropped.
      metrics
          .GetCounter(std::string("graph4ml.analyze_failed.") +
                      StatusCodeName(r.analyze_status.code()))
          ->Increment();
      KGPIP_LOG(Warning) << "skipping " << scripts[i].name << ": "
                         << r.analyze_status.ToString();
      continue;
    }
    filter_stats_.raw_nodes += r.stats.raw_nodes;
    filter_stats_.raw_edges += r.stats.raw_edges;
    filter_stats_.filtered_nodes += r.stats.filtered_nodes;
    filter_stats_.filtered_edges += r.stats.filtered_edges;
    if (!r.pipeline.valid()) {
      // No supported estimator reachable — EDA-only or unsupported
      // framework, the >96 % of a portal dump the filter removes.
      filter_rejected->Increment();
      continue;
    }
    ++scripts_kept_;
    kept->Increment();
    by_dataset_[r.pipeline.dataset_name].push_back(std::move(r.pipeline));
  }
  return Status::Ok();
}

void Graph4Ml::AddPipeline(PipelineGraph pipeline) {
  ++scripts_analyzed_;
  if (!pipeline.valid()) return;
  ++scripts_kept_;
  by_dataset_[pipeline.dataset_name].push_back(std::move(pipeline));
}

const std::vector<PipelineGraph>& Graph4Ml::PipelinesFor(
    const std::string& dataset_name) const {
  static const std::vector<PipelineGraph>& kEmpty =
      *new std::vector<PipelineGraph>();
  auto it = by_dataset_.find(dataset_name);
  return it == by_dataset_.end() ? kEmpty : it->second;
}

std::vector<std::string> Graph4Ml::DatasetNames() const {
  std::vector<std::string> names;
  names.reserve(by_dataset_.size());
  for (const auto& [name, pipelines] : by_dataset_) names.push_back(name);
  return names;
}

std::vector<const PipelineGraph*> Graph4Ml::AllPipelines() const {
  std::vector<const PipelineGraph*> all;
  for (const auto& [name, pipelines] : by_dataset_) {
    for (const PipelineGraph& p : pipelines) all.push_back(&p);
  }
  return all;
}

size_t Graph4Ml::NumPipelines() const {
  size_t n = 0;
  for (const auto& [name, pipelines] : by_dataset_) n += pipelines.size();
  return n;
}

std::map<std::string, size_t> Graph4Ml::OpHistogram() const {
  std::map<std::string, size_t> histogram;
  for (const auto& [name, pipelines] : by_dataset_) {
    for (const PipelineGraph& p : pipelines) {
      for (const std::string& t : p.transformers) ++histogram[t];
      ++histogram[p.estimator];
    }
  }
  return histogram;
}

Json Graph4Ml::ToJson() const {
  Json out = Json::Object();
  out.Set("scripts_analyzed", Json(scripts_analyzed_));
  out.Set("scripts_kept", Json(scripts_kept_));
  Json datasets = Json::Object();
  for (const auto& [name, pipelines] : by_dataset_) {
    Json list = Json::Array();
    for (const PipelineGraph& p : pipelines) {
      Json entry = Json::Object();
      entry.Set("script", Json(p.script_name));
      entry.Set("estimator", Json(p.estimator));
      Json transformers = Json::Array();
      for (const std::string& t : p.transformers) transformers.Append(t);
      entry.Set("transformers", std::move(transformers));
      Json types = Json::Array();
      for (int t : p.graph.node_types) types.Append(Json(t));
      entry.Set("node_types", std::move(types));
      Json edges = Json::Array();
      for (const auto& [src, dst] : p.graph.edges) {
        Json pair = Json::Array();
        pair.Append(Json(src));
        pair.Append(Json(dst));
        edges.Append(std::move(pair));
      }
      entry.Set("edges", std::move(edges));
      list.Append(std::move(entry));
    }
    datasets.Set(name, std::move(list));
  }
  out.Set("datasets", std::move(datasets));
  return out;
}

Result<Graph4Ml> Graph4Ml::FromJson(const Json& json) {
  Graph4Ml store;
  const Json& datasets = json.Get("datasets");
  if (!datasets.is_object()) {
    return Status::ParseError("Graph4Ml JSON missing 'datasets' object");
  }
  for (const auto& [name, list] : datasets.members()) {
    for (size_t i = 0; i < list.size(); ++i) {
      const Json& entry = list.at(i);
      PipelineGraph p;
      p.dataset_name = name;
      p.script_name = entry.Get("script").AsString();
      p.estimator = entry.Get("estimator").AsString();
      const Json& transformers = entry.Get("transformers");
      for (size_t t = 0; t < transformers.size(); ++t) {
        p.transformers.push_back(transformers.at(t).AsString());
      }
      const Json& types = entry.Get("node_types");
      for (size_t t = 0; t < types.size(); ++t) {
        p.graph.node_types.push_back(
            static_cast<int>(types.at(t).AsInt()));
      }
      const Json& edges = entry.Get("edges");
      for (size_t e = 0; e < edges.size(); ++e) {
        p.graph.edges.emplace_back(
            static_cast<int>(edges.at(e).at(0).AsInt()),
            static_cast<int>(edges.at(e).at(1).AsInt()));
      }
      if (!p.valid()) {
        return Status::ParseError("pipeline without estimator in '" +
                                  name + "'");
      }
      store.by_dataset_[name].push_back(std::move(p));
      ++store.scripts_analyzed_;
      ++store.scripts_kept_;
    }
  }
  return store;
}

}  // namespace kgpip::graph4ml
