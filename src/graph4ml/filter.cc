#include "graph4ml/filter.h"

#include <algorithm>

#include "codegraph/analysis/verifier.h"
#include "codegraph/analyzer.h"
#include "codegraph/ml_api.h"
#include "graph4ml/verify.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kgpip::graph4ml {

PipelineGraph FilterCodeGraph(const codegraph::CodeGraph& code_graph,
                              const std::string& fallback_dataset,
                              FilterStats* stats) {
  PipelineGraph out;
  out.script_name = code_graph.script_name;

  // Dataset association: explicit read_csv argument, else the portal's
  // script->dataset link.
  std::string csv = codegraph::FindReadCsvArgument(code_graph);
  if (EndsWith(csv, ".csv")) csv = csv.substr(0, csv.size() - 4);
  if (csv.empty() || csv == "data") csv = fallback_dataset;
  out.dataset_name = csv;

  // Walk call nodes in program order, keeping supported ML ops. A
  // constructor and its .fit/.fit_transform/.transform/.predict calls all
  // canonicalize to the same op; keep first occurrence only.
  bool saw_read_csv = false;
  std::vector<std::string> ops;        // transformers in order
  std::vector<bool> op_is_estimator;
  for (const codegraph::CodeNode& node : code_graph.nodes) {
    if (node.kind != codegraph::NodeKind::kCall) continue;
    if (node.label == "read_csv" || EndsWith(node.label, ".read_csv")) {
      saw_read_csv = true;
      continue;
    }
    bool is_estimator = false;
    std::string canonical =
        codegraph::CanonicalizeMlCall(node.label, &is_estimator);
    if (canonical.empty()) continue;
    if (std::find(ops.begin(), ops.end(), canonical) != ops.end()) continue;
    ops.push_back(canonical);
    op_is_estimator.push_back(is_estimator);
  }

  // Extract the estimator (last estimator op) and transformer list.
  int estimator_index = -1;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (op_is_estimator[i]) estimator_index = static_cast<int>(i);
  }
  if (estimator_index >= 0) {
    out.estimator = ops[static_cast<size_t>(estimator_index)];
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!op_is_estimator[i]) out.transformers.push_back(ops[i]);
  }

  // Assemble the filtered typed graph: dataset -> read_csv ->
  // transformers... -> estimator, following the flow of the dataframe.
  const PipelineVocab& vocab = PipelineVocab::Get();
  out.graph.node_types.push_back(PipelineVocab::kDatasetType);
  int prev = 0;
  if (saw_read_csv) {
    out.graph.node_types.push_back(PipelineVocab::kReadCsvType);
    out.graph.edges.emplace_back(prev, 1);
    prev = 1;
  }
  for (const std::string& t : out.transformers) {
    int type = vocab.TypeOf(t);
    if (type < 0) continue;
    out.graph.node_types.push_back(type);
    int idx = static_cast<int>(out.graph.node_types.size()) - 1;
    out.graph.edges.emplace_back(prev, idx);
    prev = idx;
  }
  if (!out.estimator.empty()) {
    int type = vocab.TypeOf(out.estimator);
    if (type >= 0) {
      out.graph.node_types.push_back(type);
      int idx = static_cast<int>(out.graph.node_types.size()) - 1;
      out.graph.edges.emplace_back(prev, idx);
    }
  }

  if (stats != nullptr) {
    stats->raw_nodes += code_graph.nodes.size();
    stats->raw_edges += code_graph.edges.size();
    if (out.valid()) {
      stats->filtered_nodes += out.graph.num_nodes();
      stats->filtered_edges += out.graph.num_edges();
    }
  }

  // In debug/test builds, check the chain invariants we just promised.
  // A violation here is a filter bug, so shout but stay total.
  if (codegraph::analysis::CodeGraphVerifier::enabled()) {
    std::vector<codegraph::analysis::Diagnostic> diags =
        VerifyPipelineGraph(out);
    if (codegraph::analysis::HasErrors(diags)) {
      KGPIP_LOG(Error) << "pipeline graph verification failed for "
                        << out.script_name << ":\n"
                        << codegraph::analysis::RenderDiagnostics(diags);
    }
  }
  return out;
}

}  // namespace kgpip::graph4ml
