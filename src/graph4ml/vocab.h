#ifndef KGPIP_GRAPH4ML_VOCAB_H_
#define KGPIP_GRAPH4ML_VOCAB_H_

#include <string>
#include <vector>

namespace kgpip::graph4ml {

/// A generic node-typed graph — the unit both the Graph4ML store and the
/// neural graph generator operate on. `node_types` are indices into some
/// vocabulary; `edges` are directed (src, dst) pairs.
struct TypedGraph {
  std::vector<int> node_types;
  std::vector<std::pair<int, int>> edges;

  size_t num_nodes() const { return node_types.size(); }
  size_t num_edges() const { return edges.size(); }
};

/// The fixed node-type vocabulary of filtered ML pipeline graphs:
///   0: dataset anchor node
///   1: pandas.read_csv
///   2...: canonical transformer and estimator ops (from the ML API table)
class PipelineVocab {
 public:
  PipelineVocab();

  int size() const { return static_cast<int>(names_.size()); }
  /// Index for a canonical op name; -1 if unknown.
  int TypeOf(const std::string& canonical) const;
  const std::string& NameOf(int type) const { return names_[type]; }
  bool IsEstimator(int type) const { return is_estimator_[type]; }
  bool IsTransformer(int type) const {
    return type >= kFirstOp && !is_estimator_[type];
  }

  static constexpr int kDatasetType = 0;
  static constexpr int kReadCsvType = 1;
  static constexpr int kFirstOp = 2;

  /// The process-wide vocabulary instance.
  static const PipelineVocab& Get();

 private:
  std::vector<std::string> names_;
  std::vector<bool> is_estimator_;
};

}  // namespace kgpip::graph4ml

#endif  // KGPIP_GRAPH4ML_VOCAB_H_
