#include "util/request_context.h"

#include <utility>

namespace kgpip::util {

namespace {

RequestContext& ThisThreadContext() {
  thread_local RequestContext context;
  return context;
}

}  // namespace

const RequestContext& CurrentRequestContext() { return ThisThreadContext(); }

RequestContext ExchangeRequestContext(RequestContext context) {
  RequestContext& current = ThisThreadContext();
  RequestContext previous = std::move(current);
  current = std::move(context);
  return previous;
}

}  // namespace kgpip::util
