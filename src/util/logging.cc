#include "util/logging.h"

#include <cstdlib>
#include <iostream>

namespace kgpip {

namespace {
LogLevel g_log_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() { std::cerr << stream_.str() << "\n"; }

CheckFailure::CheckFailure(const char* file, int line, const char* cond) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << cond
          << " ";
}

CheckFailure::~CheckFailure() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal_logging
}  // namespace kgpip
