#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/request_context.h"

namespace kgpip {

namespace {

/// Threads log concurrently (obs tests, future parallel trial runners),
/// so the threshold is atomic — a plain global here is a data race.
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};
std::atomic<bool> g_level_explicit{false};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

bool ParseLogLevel(const char* text, LogLevel* out) {
  std::string lower;
  for (const char* p = text; *p != '\0'; ++p) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *out = LogLevel::kWarning;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

/// Applies KGPIP_LOG_LEVEL once, at first threshold read. An explicit
/// SetLogLevel always wins over the environment.
void ApplyEnvLogLevelOnce() {
  static const bool applied = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) -- once-only getenv behind a
    // static initializer; the environment is never mutated.
    const char* env = std::getenv("KGPIP_LOG_LEVEL");
    LogLevel level;
    if (env != nullptr && ParseLogLevel(env, &level) &&
        !g_level_explicit.load(std::memory_order_acquire)) {
      g_log_level.store(level, std::memory_order_relaxed);
    }
    return true;
  }();
  (void)applied;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level_explicit.store(true, std::memory_order_release);
  g_log_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  ApplyEnvLogLevelOnce();
  return g_log_level.load(std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  // Serving threads carry the id of the request they are working for;
  // prefixing it makes every log record greppable by request/tenant (the
  // same ids the trace spans and audit log carry).
  const util::RequestContext& ctx = util::CurrentRequestContext();
  if (ctx.active()) {
    stream_ << "[req " << ctx.request_id << " tenant " << ctx.tenant << "] ";
  }
}

LogMessage::~LogMessage() {
  // One buffer, one fwrite: stdio locks the stream per call, so
  // concurrent log lines never interleave mid-line.
  stream_ << '\n';
  const std::string line = stream_.str();
  std::fwrite(line.data(), 1, line.size(), stderr);
}

CheckFailure::CheckFailure(const char* file, int line, const char* cond) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << cond
          << " ";
}

CheckFailure::~CheckFailure() {
  stream_ << '\n';
  const std::string line = stream_.str();
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace kgpip
