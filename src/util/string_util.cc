#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace kgpip {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(
                          static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

bool ParseDouble(std::string_view text, double* out) {
  text = StripAsciiWhitespace(text);
  if (text.empty() || text.size() > 63) return false;
  char buf[64];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  double v = std::strtod(buf, &end);
  if (end != buf + text.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  text = StripAsciiWhitespace(text);
  if (text.empty() || text.size() > 31) return false;
  char buf[32];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  long long v = std::strtoll(buf, &end, 10);
  if (end != buf + text.size()) return false;
  *out = v;
  return true;
}

uint64_t Fnv1a64(std::string_view text) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

}  // namespace kgpip
