#ifndef KGPIP_UTIL_THREAD_POOL_H_
#define KGPIP_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "util/rng.h"

namespace kgpip::util {

/// In-process parallel runtime for the corpus/embedding/training hot
/// paths. Design goals, in priority order:
///
///   1. **Determinism.** Parallel results must be bit-identical at any
///      thread count. The pool itself never reorders *outputs*: work is
///      identified by item index, `ParallelMap` writes results into an
///      index-addressed vector, and callers reduce left-to-right. RNG
///      state is split *before* dispatch via `ForkRngs` (sequential
///      `Rng::Fork` calls on the calling thread), so stream assignment
///      is a function of the item index alone.
///   2. **Work stealing.** Each worker owns a deque (Chase–Lev layout:
///      the owner pushes/pops at the bottom, thieves steal from the
///      top), so an unlucky worker stuck with slow items sheds its tail
///      to idle peers. Deques are mutex-guarded rather than lock-free —
///      chunks are coarse enough that the lock is not the bottleneck,
///      and the simple variant is ThreadSanitizer-clean by construction.
///   3. **Inline degeneration.** `KGPIP_THREADS=1` (or a single-core
///      machine) spawns no threads at all: every helper runs the loop
///      body inline on the calling thread. Nested `ParallelFor` calls
///      from inside a worker also run inline, which keeps composed
///      parallel code (e.g. forest fits inside parallel CV folds)
///      deadlock-free.
///
/// Instrumentation: `pool.tasks_executed`, `pool.steals`,
/// `pool.parallel_fors` counters, a `pool.queue_depth` gauge (chunks
/// outstanding at submit), and a `pool.task_seconds` histogram in the
/// global obs::MetricsRegistry, plus `pool.parallel_for` trace spans.
class ThreadPool {
 public:
  /// The process-wide pool. Lazily constructed on first use with
  /// `KGPIP_THREADS` threads (unset or 0 = hardware concurrency).
  static ThreadPool& Global();

  /// Threads the *global* pool would be created with right now: the
  /// `KGPIP_THREADS` override, a `Configure` call, or the hardware
  /// concurrency. Does not force pool construction.
  static int PlannedThreads();

  /// Reconfigures the global pool's thread count (tests and benches;
  /// production uses the env var). Joins existing workers first. Must
  /// not be called from inside a pool task.
  static void Configure(int num_threads);

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes: worker threads + the calling thread. Lane
  /// ids passed to loop bodies are in [0, num_lanes()).
  int num_lanes() const { return num_workers_ + 1; }
  int num_worker_threads() const { return num_workers_; }

  /// Runs body(i, lane) for every i in [0, n), blocking until all items
  /// finish. `lane` identifies the executing lane (stable scratch-slot
  /// index); item-to-lane assignment is *not* deterministic, so lane
  /// scratch must not influence results. If bodies throw, the exception
  /// of the lowest item index is rethrown after the loop drains (so the
  /// choice of surfaced error is deterministic too).
  void ParallelFor(size_t n,
                   const std::function<void(size_t item, size_t lane)>& body);

  /// Convenience: grain-free ParallelFor without the lane id.
  void ParallelFor(size_t n, const std::function<void(size_t item)>& body);

  /// Order-preserving map: out[i] = fn(i). Results land by index, so the
  /// output is independent of scheduling.
  template <typename T>
  std::vector<T> ParallelMap(size_t n,
                             const std::function<T(size_t item)>& fn) {
    std::vector<T> out(n);
    ParallelFor(n, [&](size_t i, size_t /*lane*/) { out[i] = fn(i); });
    return out;
  }

  /// Ordered reduction: maps every item, then folds the per-item results
  /// strictly left-to-right on the calling thread. `fold(acc, value, i)`
  /// sees items in ascending index order regardless of thread count, so
  /// floating-point accumulation is bit-stable.
  template <typename Acc, typename T>
  Acc ParallelMapReduce(size_t n, Acc init,
                        const std::function<T(size_t item)>& map,
                        const std::function<void(Acc&, T&, size_t)>& fold) {
    std::vector<T> mapped = ParallelMap<T>(n, map);
    Acc acc = std::move(init);
    for (size_t i = 0; i < n; ++i) fold(acc, mapped[i], i);
    return acc;
  }

 private:
  struct Impl;
  Impl* impl_;  // manually managed; opaque to keep <thread> out of headers
  int num_workers_ = 0;
};

/// Splits `parent` into `n` statistically independent child generators by
/// consuming from it sequentially (n forks) on the calling thread. The
/// i-th child depends only on the parent state and i — never on which
/// worker later consumes it — so handing fork i to item i keeps parallel
/// randomness deterministic at any thread count.
std::vector<Rng> ForkRngs(Rng* parent, size_t n);

}  // namespace kgpip::util

#endif  // KGPIP_UTIL_THREAD_POOL_H_
