#ifndef KGPIP_UTIL_CANCEL_H_
#define KGPIP_UTIL_CANCEL_H_

#include <atomic>

namespace kgpip::util {

/// Cooperative cancellation flag shared between a request's executor and
/// whoever decides the request is no longer worth finishing (the serve
/// watchdog, a drain sequence, a test). Long-running loops poll
/// `cancelled()` at block boundaries and bail out with a definite Status
/// instead of finishing a doomed scan.
///
/// The flag is one relaxed atomic bool: setting it is idempotent and
/// polling it from pool lanes is race-free. There is no reset — a token
/// represents one request's lifetime; make a new one per request.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// True when `token` is non-null and has been cancelled — the common
/// poll in code where cancellation is optional.
inline bool Cancelled(const CancelToken* token) {
  return token != nullptr && token->cancelled();
}

}  // namespace kgpip::util

#endif  // KGPIP_UTIL_CANCEL_H_
