#ifndef KGPIP_UTIL_LOGGING_H_
#define KGPIP_UTIL_LOGGING_H_

#include <sstream>

namespace kgpip {

/// Log severities, ordered; messages below the global threshold are dropped.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets / reads the process-wide minimum severity (default: kWarning, so
/// benchmarks and tests stay quiet unless something is wrong). The
/// threshold is atomic — logging is thread-safe, and concurrent messages
/// never interleave mid-line. The `KGPIP_LOG_LEVEL` environment variable
/// (debug|info|warning|error, case-insensitive) overrides the default at
/// first use; an explicit SetLogLevel wins over the environment.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Prints the failed condition plus streamed context and aborts.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* cond);
  ~CheckFailure();  // aborts

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lets a statement-expression macro discard a stream chain: the `&`
/// operator binds looser than `<<`, so the whole chain is evaluated first.
struct Voidify {
  void operator&(const LogMessage&) {}
  void operator&(const CheckFailure&) {}
};

}  // namespace internal_logging

/// KGPIP_LOG(Info) << "message"; — dropped entirely below the threshold.
#define KGPIP_LOG(severity)                                     \
  (::kgpip::LogLevel::k##severity < ::kgpip::GetLogLevel())     \
      ? (void)0                                                 \
      : ::kgpip::internal_logging::Voidify() &                  \
            ::kgpip::internal_logging::LogMessage(              \
                ::kgpip::LogLevel::k##severity, __FILE__, __LINE__)

/// CHECK-style invariant assertion for programmer errors; recoverable
/// conditions use Status instead.
#define KGPIP_CHECK(cond)                                  \
  (cond) ? (void)0                                         \
         : ::kgpip::internal_logging::Voidify() &          \
               ::kgpip::internal_logging::CheckFailure(    \
                   __FILE__, __LINE__, #cond)

}  // namespace kgpip

#endif  // KGPIP_UTIL_LOGGING_H_
