#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/string_util.h"

namespace kgpip {

namespace {

/// Recursive-descent JSON parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    SkipWs();
    KGPIP_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters at offset " +
                                std::to_string(pos_));
    }
    return value;
  }

 private:
  Result<Json> ParseValue() {
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseKeyword("true", Json(true));
      case 'f':
        return ParseKeyword("false", Json(false));
      case 'n':
        return ParseKeyword("null", Json());
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json obj = Json::Object();
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      SkipWs();
      if (Peek() != '"') return Err("expected object key");
      KGPIP_ASSIGN_OR_RETURN(Json key, ParseString());
      SkipWs();
      if (Peek() != ':') return Err("expected ':'");
      ++pos_;
      SkipWs();
      KGPIP_ASSIGN_OR_RETURN(Json value, ParseValue());
      obj.Set(key.AsString(), std::move(value));
      SkipWs();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      return Err("expected ',' or '}'");
    }
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json arr = Json::Array();
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      SkipWs();
      KGPIP_ASSIGN_OR_RETURN(Json value, ParseValue());
      arr.Append(std::move(value));
      SkipWs();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      return Err("expected ',' or ']'");
    }
  }

  Result<Json> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Json(std::move(out));
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Err("bad \\u escape digit");
              }
            }
            // UTF-8 encode (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Err("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return Err("unterminated string");
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double v = 0.0;
    if (!ParseDouble(text_.substr(start, pos_ - start), &v)) {
      return Err("invalid number");
    }
    return Json(v);
  }

  Result<Json> ParseKeyword(std::string_view kw, Json value) {
    if (text_.substr(pos_, kw.size()) != kw) return Err("invalid literal");
    pos_ += kw.size();
    return value;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Status Err(const std::string& what) const {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void AppendEscaped(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendNumber(std::string* out, double v) {
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    *out += buf;
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *out += buf;
  }
}

}  // namespace

bool Json::Has(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::Get(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return v;
  }
  static const Json kNull;
  return kNull;
}

void Json::Set(std::string key, Json value) {
  type_ = Type::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      *out += '\n';
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      *out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) *out += ',';
        newline(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      *out += ']';
      break;
    }
    case Type::kObject: {
      *out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) *out += ',';
        newline(depth + 1);
        AppendEscaped(out, members_[i].first);
        *out += indent > 0 ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      *out += '}';
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace kgpip
