#ifndef KGPIP_UTIL_FAULT_H_
#define KGPIP_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "util/mutex.h"
#include "util/status.h"

namespace kgpip::util {

/// Deterministic fault-injection configuration. Rates are probabilities
/// in [0, 1]. Every injection decision is a pure function of
/// (config seed, site, key, per-site-and-key call index), so a run with
/// a fixed seed sees the identical fault sequence regardless of wall
/// clock or call interleaving — CI can assert on exact degradation
/// behaviour.
struct FaultConfig {
  uint64_t seed = 0;
  /// P(an Evaluate call fails with kInternal) — a *permanent* trial
  /// failure; retrying re-rolls with the next call index.
  double evaluator_error_rate = 0.0;
  /// P(an Evaluate call fails with kResourceExhausted) — the transient
  /// flavour, expected to clear under retry-with-backoff.
  double resource_exhausted_rate = 0.0;
  /// P(an Evaluate call yields a NaN score instead of a real one).
  double nan_score_rate = 0.0;
  /// P(a trial reports `slow_trial_seconds` of extra simulated latency),
  /// used to exercise per-trial deadlines without real sleeps.
  double slow_trial_rate = 0.0;
  double slow_trial_seconds = 0.0;
  /// Learners whose every trial fails with kInternal — the
  /// "always-invalid skeleton" that must trip the circuit breaker.
  std::set<std::string> fail_learners;
  /// Flip one bit in every `corrupt_byte_stride`-th payload byte of a
  /// saved artifact (0 = off).
  int corrupt_byte_stride = 0;
};

/// Counters of faults actually injected, for test assertions.
struct FaultCounters {
  int evaluator_errors = 0;
  int resource_exhausted = 0;
  int nan_scores = 0;
  int slow_trials = 0;
  int corrupted_bytes = 0;
};

/// The process-wide fault injector. Production code consults
/// `FaultInjector::Active()` at its fault sites; when no `ScopedFaultInjection`
/// is live the pointer is null and every site is a no-op branch.
///
/// Thread-safety: the active injector is published through an atomic
/// pointer and all decision state (per-site call indices, counters) is
/// mutex-guarded, so fault sites inside `ThreadPool` lanes — `ParallelFor`
/// bodies, serve workers — observe the scope installed by the submitting
/// thread and draw from one shared, coherent call sequence. Per
/// (site, key) the sequence of decisions is still the fixed function of
/// the seed; under parallelism only the *assignment* of call indices to
/// racing callers varies, never the multiset of decisions.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config) : config_(std::move(config)) {}

  /// Null when no injection scope is active (the production default).
  static FaultInjector* Active();

  /// Fault decision for one Evaluate attempt on `learner`. Returns the
  /// injected error status, or nullopt to let the real evaluation run.
  std::optional<Status> EvaluatorFault(const std::string& learner);

  /// True if this attempt's score should be replaced with NaN.
  bool InjectNanScore(const std::string& learner);

  /// Extra simulated latency (seconds) for this attempt; 0 when the
  /// trial is not selected as slow.
  double InjectedDelaySeconds(const std::string& learner);

  /// Corrupts artifact bytes in place per `corrupt_byte_stride`.
  void CorruptArtifact(std::string* payload);

  const FaultConfig& config() const { return config_; }
  /// Snapshot of the counters (copied under the lock so a reader racing
  /// pool-lane injections sees a coherent set).
  FaultCounters counters() const {
    MutexLock lock(mu_);
    return counters_;
  }

 private:
  /// Deterministic Bernoulli draw for (site, key, call index).
  bool Roll(int site, const std::string& key, double rate)
      KGPIP_REQUIRES(mu_);

  FaultConfig config_;
  mutable Mutex mu_{LockRank::kFault, "fault"};
  FaultCounters counters_ KGPIP_GUARDED_BY(mu_);
  /// Per-(site, key) call indices; the only mutable decision state.
  std::map<std::pair<int, std::string>, uint64_t> calls_
      KGPIP_GUARDED_BY(mu_);
};

/// RAII installation of a fault injector. Scopes may not nest (the inner
/// scope would silently mask the outer one); nesting aborts via KGPIP_CHECK.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultConfig config);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  FaultInjector& injector() { return injector_; }

 private:
  FaultInjector injector_;
};

}  // namespace kgpip::util

#endif  // KGPIP_UTIL_FAULT_H_
