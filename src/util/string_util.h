#ifndef KGPIP_UTIL_STRING_UTIL_H_
#define KGPIP_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace kgpip {

/// Splits `text` on `delim`; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view text);

/// ASCII lowercase copy.
std::string AsciiToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);
bool Contains(std::string_view text, std::string_view needle);

/// Attempts to parse a double; returns false on any trailing garbage.
bool ParseDouble(std::string_view text, double* out);

/// Attempts to parse a 64-bit integer.
bool ParseInt64(std::string_view text, int64_t* out);

/// FNV-1a 64-bit hash, the library's canonical string hash (stable across
/// platforms, unlike std::hash).
uint64_t Fnv1a64(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace kgpip

#endif  // KGPIP_UTIL_STRING_UTIL_H_
