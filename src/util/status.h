#ifndef KGPIP_UTIL_STATUS_H_
#define KGPIP_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace kgpip {

/// Error codes used across the library. Mirrors the usual database-engine
/// convention of status-based error handling instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
  kParseError,
  kIoError,
};

/// Returns a human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. All fallible public APIs in
/// kgpip return `Status` (or `Result<T>` when they produce a value).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-status holder, analogous to absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error status keeps call
  /// sites terse: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(data_);
  }

  /// Precondition: ok().
  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK status to the caller.
#define KGPIP_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::kgpip::Status kgpip_status_ = (expr);        \
    if (!kgpip_status_.ok()) return kgpip_status_; \
  } while (false)

#define KGPIP_MACRO_CONCAT_INNER(a, b) a##b
#define KGPIP_MACRO_CONCAT(a, b) KGPIP_MACRO_CONCAT_INNER(a, b)

/// Assigns a Result's value to `lhs`, or propagates its error status.
#define KGPIP_ASSIGN_OR_RETURN(lhs, rexpr) \
  KGPIP_ASSIGN_OR_RETURN_IMPL(             \
      KGPIP_MACRO_CONCAT(kgpip_result_, __LINE__), lhs, rexpr)

#define KGPIP_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

}  // namespace kgpip

#endif  // KGPIP_UTIL_STATUS_H_
