#include "util/mutex.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace kgpip::util {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kClient:
      return "client";
    case LockRank::kServeServer:
      return "serve.server";
    case LockRank::kServeAudit:
      return "serve.audit";
    case LockRank::kServeCache:
      return "serve.cache";
    case LockRank::kPoolRegistry:
      return "pool.registry";
    case LockRank::kPoolWake:
      return "pool.wake";
    case LockRank::kPoolLoop:
      return "pool.loop";
    case LockRank::kPoolDeque:
      return "pool.deque";
    case LockRank::kGenEngines:
      return "gen.engines";
    case LockRank::kFault:
      return "fault";
    case LockRank::kObsMetrics:
      return "obs.metrics";
    case LockRank::kObsTrace:
      return "obs.trace";
    case LockRank::kObsWindow:
      return "obs.window";
    case LockRank::kLogging:
      return "logging";
    case LockRank::kLeaf:
      return "leaf";
  }
  return "?";
}

#ifndef KGPIP_NO_LOCK_RANK

namespace {

/// One acquired ranked mutex on the calling thread's stack.
struct HeldLock {
  const Mutex* mu;
  int rank;
  const char* name;
};

/// Per-thread acquisition stack, outermost first. Enforced ordering
/// keeps it strictly descending by rank, so the minimum held rank is
/// always the back entry.
thread_local std::vector<HeldLock> t_held;

/// -1 = unresolved (consult KGPIP_CHECK_LOCKS on first use), 0 = off,
/// 1 = on. Racing resolvers compute the same value, so a relaxed
/// publish is enough.
std::atomic<int> g_checks_state{-1};

void DefaultViolationHandler(const char* acquiring, int acquiring_rank,
                             const char* held, int held_rank) {
  // fprintf, not KGPIP_LOG: a deadlock-order violation must print even
  // when the log threshold would drop it, and must not re-enter any
  // subsystem that itself takes locks.
  std::fprintf(stderr,
               "[FATAL] lock-rank violation: acquiring '%s' (rank %d) "
               "while holding '%s' (rank %d); acquisition order must be "
               "strictly descending in rank (see util/mutex.h)\n",
               acquiring, acquiring_rank, held, held_rank);
  std::fprintf(stderr, "        held stack (outermost first):\n");
  for (const HeldLock& entry : t_held) {
    std::fprintf(stderr, "          '%s' (rank %d)\n", entry.name,
                 entry.rank);
  }
  std::fflush(stderr);
  std::abort();
}

std::atomic<LockRankViolationHandler> g_handler{&DefaultViolationHandler};

}  // namespace

bool LockRankCheckingEnabled() {
  int state = g_checks_state.load(std::memory_order_relaxed);
  if (state >= 0) return state == 1;
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- getenv is read-only here and
  // the process never calls setenv after startup; racing first readers
  // all observe the same environment.
  const char* env = std::getenv("KGPIP_CHECK_LOCKS");
  const bool enabled =
      env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
  g_checks_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
  return enabled;
}

void SetLockRankCheckingEnabled(bool enabled) {
  g_checks_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void SetLockRankViolationHandler(LockRankViolationHandler handler) {
  g_handler.store(handler != nullptr ? handler : &DefaultViolationHandler,
                  std::memory_order_relaxed);
}

std::vector<std::string> HeldLockNamesForTest() {
  std::vector<std::string> names;
  names.reserve(t_held.size());
  for (const HeldLock& entry : t_held) names.emplace_back(entry.name);
  return names;
}

void Mutex::RankCheckBeforeAcquire() {
  if (rank_ == kUnranked) return;
  if (!LockRankCheckingEnabled()) return;
  if (t_held.empty()) return;
  // Enforced ordering keeps the stack descending, so comparing against
  // the innermost (minimum) held rank checks against all of them. Equal
  // ranks are violations too: two same-rank locks acquired in opposite
  // orders on two threads is the classic AB/BA deadlock.
  const HeldLock& innermost = t_held.back();
  if (rank_ >= innermost.rank) {
    g_handler.load(std::memory_order_relaxed)(name_, rank_, innermost.name,
                                              innermost.rank);
  }
}

void Mutex::RankPushAfterAcquire() {
  if (rank_ == kUnranked) return;
  if (!LockRankCheckingEnabled()) return;
  t_held.push_back(HeldLock{this, rank_, name_});
}

void Mutex::RankPopBeforeRelease() {
  if (rank_ == kUnranked) return;
  if (!LockRankCheckingEnabled()) return;
  // Search from the innermost end: releases are almost always LIFO. A
  // missing entry is tolerated (checking was enabled mid-flight, or the
  // lock predates the first enable) rather than flagged.
  for (size_t i = t_held.size(); i > 0; --i) {
    if (t_held[i - 1].mu == this) {
      t_held.erase(t_held.begin() + static_cast<long>(i - 1));
      return;
    }
  }
}

#else  // KGPIP_NO_LOCK_RANK

bool LockRankCheckingEnabled() { return false; }
void SetLockRankCheckingEnabled(bool /*enabled*/) {}
void SetLockRankViolationHandler(LockRankViolationHandler /*handler*/) {}
std::vector<std::string> HeldLockNamesForTest() { return {}; }

#endif  // KGPIP_NO_LOCK_RANK

}  // namespace kgpip::util
