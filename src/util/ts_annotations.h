#ifndef KGPIP_UTIL_TS_ANNOTATIONS_H_
#define KGPIP_UTIL_TS_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros.
///
/// When the tree is compiled with `clang++ -Wthread-safety` (the CI
/// `thread-safety` job adds `-Werror`), these expand to the attributes
/// that let the compiler prove lock discipline statically: every access
/// to a `KGPIP_GUARDED_BY(mu)` field must happen while `mu` is held,
/// every `KGPIP_REQUIRES(mu)` function must be called with `mu` held,
/// and a `KGPIP_SCOPED_CAPABILITY` RAII type is known to release on
/// destruction. On every other compiler (the container's g++ included)
/// they expand to nothing, so the annotations are free documentation.
///
/// The analysis is flow-sensitive but purely static; what it cannot see
/// (locks handed across threads, aliased capabilities) is covered by the
/// runtime lock-rank checker in util/mutex.h. Escape hatches
/// (`KGPIP_NO_THREAD_SAFETY_ANALYSIS`) are allowed only with a rationale
/// comment at the use site.
#if defined(__clang__) && !defined(SWIG)
#define KGPIP_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define KGPIP_TS_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Class attribute: instances are lockable capabilities ("mutex").
#define KGPIP_CAPABILITY(x) KGPIP_TS_ATTRIBUTE(capability(x))

/// Class attribute: RAII type that acquires in its constructor and
/// releases in its destructor (std::lock_guard shape).
#define KGPIP_SCOPED_CAPABILITY KGPIP_TS_ATTRIBUTE(scoped_lockable)

/// Data member attribute: reads and writes require holding `x`.
#define KGPIP_GUARDED_BY(x) KGPIP_TS_ATTRIBUTE(guarded_by(x))

/// Pointer member attribute: the pointed-to data requires holding `x`
/// (the pointer itself is unguarded).
#define KGPIP_PT_GUARDED_BY(x) KGPIP_TS_ATTRIBUTE(pt_guarded_by(x))

/// Function attribute: acquires the listed capabilities (exclusive).
#define KGPIP_ACQUIRE(...) \
  KGPIP_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function attribute: releases the listed capabilities.
#define KGPIP_RELEASE(...) \
  KGPIP_TS_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function attribute: acquires iff the return value equals the first
/// argument (e.g. KGPIP_TRY_ACQUIRE(true)).
#define KGPIP_TRY_ACQUIRE(...) \
  KGPIP_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function attribute: the caller must already hold the capabilities.
#define KGPIP_REQUIRES(...) \
  KGPIP_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function attribute: the caller must NOT hold the capabilities
/// (catches self-deadlock on non-recursive mutexes).
#define KGPIP_EXCLUDES(...) \
  KGPIP_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Declaration-order hints for the static lock-order check.
#define KGPIP_ACQUIRED_BEFORE(...) \
  KGPIP_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define KGPIP_ACQUIRED_AFTER(...) \
  KGPIP_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function attribute: returns a reference to the capability guarding
/// the returned data.
#define KGPIP_RETURN_CAPABILITY(x) KGPIP_TS_ATTRIBUTE(lock_returned(x))

/// Runtime assertion visible to the analysis: from here on, treat the
/// capability as held.
#define KGPIP_ASSERT_CAPABILITY(x) \
  KGPIP_TS_ATTRIBUTE(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Every use MUST
/// carry a comment explaining why the analysis cannot model the code
/// (see DESIGN.md "Concurrency correctness & lock discipline").
#define KGPIP_NO_THREAD_SAFETY_ANALYSIS \
  KGPIP_TS_ATTRIBUTE(no_thread_safety_analysis)

#endif  // KGPIP_UTIL_TS_ANNOTATIONS_H_
