#ifndef KGPIP_UTIL_JSON_H_
#define KGPIP_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace kgpip {

/// A minimal JSON document model. KGpip uses JSON for the integration
/// contract between the core system and hyper-parameter optimizers (the
/// paper: "the integration of a hyperparameter optimizer into KGpip needs a
/// JSON document of the particular preprocessors and estimators supported"),
/// and for artifact serialization.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}              // NOLINT
  Json(double d) : type_(Type::kNumber), number_(d) {}        // NOLINT
  Json(int i) : type_(Type::kNumber), number_(i) {}           // NOLINT
  Json(int64_t i)                                             // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(size_t i)                                              // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}   // NOLINT
  Json(std::string s)                                         // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  int64_t AsInt(int64_t fallback = 0) const {
    return is_number() ? static_cast<int64_t>(number_) : fallback;
  }
  const std::string& AsString() const { return string_; }

  /// Array access.
  size_t size() const {
    return is_array() ? array_.size() : (is_object() ? members_.size() : 0);
  }
  const Json& at(size_t i) const { return array_[i]; }
  void Append(Json value) { array_.push_back(std::move(value)); }
  const std::vector<Json>& items() const { return array_; }

  /// Object access. `Get` returns a shared null for missing keys.
  bool Has(std::string_view key) const;
  const Json& Get(std::string_view key) const;
  void Set(std::string key, Json value);
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Serializes; `indent` > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  /// Parses a JSON document.
  static Result<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace kgpip

#endif  // KGPIP_UTIL_JSON_H_
