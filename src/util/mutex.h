#ifndef KGPIP_UTIL_MUTEX_H_
#define KGPIP_UTIL_MUTEX_H_

#include <condition_variable>
#include <chrono>
#include <mutex>
#include <string>
#include <vector>

#include "util/ts_annotations.h"

namespace kgpip::util {

/// The process-wide lock-rank table — THE documented lock order for the
/// whole codebase (DESIGN.md "Concurrency correctness & lock discipline"
/// points here). A thread may only acquire a mutex whose rank is
/// STRICTLY LOWER than every rank it already holds, so any cycle between
/// two threads requires an out-of-order acquisition that the runtime
/// checker catches on the very first occurrence — no unlucky
/// interleaving needed.
///
/// Ranks are spaced by 10 so a future layer slots in without renumbering
/// the table. Higher rank = outermost (acquired first). Notes record the
/// nestings that actually happen today.
enum class LockRank : int {
  /// Test/bench client bookkeeping (soak-harness summary). Never held
  /// while calling into the server.
  kClient = 110,
  /// serve::Server::mu_ — admission queue, tenants, in-flight set. The
  /// outermost lock of the serving daemon; request execution (cache,
  /// model, pool) runs with it released.
  kServeServer = 100,
  /// serve::AuditLog::mu_ — audit file + tail ring. Below the server
  /// lock so a status snapshot may read the tail while holding mu_;
  /// Append itself always runs with the server lock released.
  kServeAudit = 95,
  /// serve::ArtifactCache::mu_ — memory-tier LRU + stats. Held only
  /// around map/list surgery; disk I/O happens outside it.
  kServeCache = 90,
  /// util::ThreadPool global-singleton registry. Held across pool
  /// construction/destruction, which joins workers and (in the
  /// destructor path) takes the pool wake lock — hence above kPoolWake.
  kPoolRegistry = 80,
  /// util::ThreadPool wake lock (sleep/wake epoch handshake).
  kPoolWake = 70,
  /// One ParallelFor's completion lock (error slot + done notify).
  kPoolLoop = 65,
  /// Per-lane steal-deque locks. Pop and steal are sequential, never
  /// nested in one another.
  kPoolDeque = 60,
  /// gen::GraphGenerator engine-checkout free list.
  kGenEngines = 50,
  /// util::FaultInjector decision state. Taken from pool lanes and serve
  /// workers with no other kgpip lock held.
  kFault = 40,
  /// obs::MetricsRegistry name->metric map. Leaf-ish: metric updates
  /// themselves are lock-free; only find-or-create locks.
  kObsMetrics = 30,
  /// obs::Tracer span buffer.
  kObsTrace = 20,
  /// obs::SlidingWindowHistogram / SlidingWindowCounter slice state. One
  /// window is locked at a time (registry snapshots walk them
  /// sequentially), always below the registry map lock.
  kObsWindow = 15,
  /// Reserved for logging. Today logging is lock-free (atomic threshold,
  /// single fwrite per record); the rank documents where a sink lock
  /// would sit: innermost, because any subsystem logs while holding its
  /// own locks.
  kLogging = 10,
  /// Locks that never nest around anything.
  kLeaf = 0,
};

/// Human-readable name of a rank (the enum constant without the prefix).
const char* LockRankName(LockRank rank);

/// True when the rank checker is compiled into this binary. Builds that
/// want the absolute-zero-overhead mutex (no per-acquire branch) compile
/// with -DKGPIP_NO_LOCK_RANK (CMake: -DKGPIP_LOCK_RANK=OFF).
constexpr bool LockRankCheckingCompiled() {
#ifdef KGPIP_NO_LOCK_RANK
  return false;
#else
  return true;
#endif
}

/// Runtime toggle. Defaults from the KGPIP_CHECK_LOCKS environment
/// variable (any value other than empty/"0" enables), resolved once at
/// first lock. Tests flip it programmatically; the explicit setter wins
/// over the environment. Always false when checking is compiled out.
bool LockRankCheckingEnabled();
void SetLockRankCheckingEnabled(bool enabled);

/// Called on an out-of-order acquisition with both lock names and ranks.
/// The default handler prints the full per-thread held stack and aborts;
/// tests install a recording handler instead (the handler returns and
/// the acquisition proceeds, so a test can observe the violation without
/// dying).
using LockRankViolationHandler = void (*)(const char* acquiring,
                                          int acquiring_rank,
                                          const char* held, int held_rank);
void SetLockRankViolationHandler(LockRankViolationHandler handler);

/// Names of the locks the calling thread currently holds (outermost
/// first). Empty when checking is off. Test/debug introspection only.
std::vector<std::string> HeldLockNamesForTest();

/// Annotated mutex: a std::mutex the Clang thread-safety analysis can
/// reason about, plus an optional runtime lock-rank deadlock check.
///
///   * Static: the KGPIP_CAPABILITY attribute makes `KGPIP_GUARDED_BY`
///     fields and `KGPIP_REQUIRES` functions checkable by
///     `clang++ -Wthread-safety` (the CI thread-safety job).
///   * Runtime: a ranked mutex (the two-argument constructor) verifies on
///     every Lock that its rank is strictly below every rank the thread
///     already holds — see LockRank. Checking costs one relaxed atomic
///     load + branch per acquire when disabled, and is compiled out
///     entirely under KGPIP_NO_LOCK_RANK.
///
/// Default-constructed mutexes are UNRANKED: exempt from the rank check
/// (they still participate in the static analysis). Use that only for
/// function-local or test-local locks that never nest with the ranked
/// core; every long-lived mutex in src/ must carry a rank from the table.
class KGPIP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() noexcept : rank_(kUnranked), name_("unranked") {}
  Mutex(LockRank rank, const char* name) noexcept
      : rank_(static_cast<int>(rank)), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KGPIP_ACQUIRE() {
#ifndef KGPIP_NO_LOCK_RANK
    // Check BEFORE blocking: an out-of-order acquire is reported even
    // when it would have deadlocked right here.
    RankCheckBeforeAcquire();
#endif
    mu_.lock();
#ifndef KGPIP_NO_LOCK_RANK
    RankPushAfterAcquire();
#endif
  }

  void Unlock() KGPIP_RELEASE() {
#ifndef KGPIP_NO_LOCK_RANK
    RankPopBeforeRelease();
#endif
    mu_.unlock();
  }

  /// Non-blocking acquire. A failed TryLock cannot deadlock, so rank
  /// order is not enforced on it — but a successful one still pushes
  /// onto the held stack so later Lock calls are checked against it.
  bool TryLock() KGPIP_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#ifndef KGPIP_NO_LOCK_RANK
    RankPushAfterAcquire();
#endif
    return true;
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

  static constexpr int kUnranked = -1;

 private:
  friend class CondVar;

  void RankCheckBeforeAcquire();
  void RankPushAfterAcquire();
  void RankPopBeforeRelease();

  std::mutex mu_;
  int rank_;
  const char* name_;
};

/// RAII lock (std::lock_guard shape) over util::Mutex. The
/// KGPIP_SCOPED_CAPABILITY attribute tells the static analysis the
/// constructor acquires and the destructor releases.
class KGPIP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KGPIP_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() KGPIP_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to util::Mutex (abseil-shaped API: waits
/// take the Mutex, which the caller must hold — the KGPIP_REQUIRES
/// annotation makes that statically checked). Predicate overloads keep
/// the standard library's spurious-wakeup-safe re-check loop.
///
/// Rank bookkeeping across a wait: the wait releases and reacquires the
/// underlying std::mutex directly, leaving the mutex on the thread's
/// held-rank stack. That is the intended semantics — the predicate (and
/// everything after the wake) runs with the lock held, so acquisitions
/// from inside it are checked against the mutex's rank exactly as if the
/// lock had never been dropped; while blocked, the thread acquires
/// nothing, so the stale stack entry can't cause a false positive.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) KGPIP_REQUIRES(mu) {
    RawRef raw(mu);
    cv_.wait(raw);
  }

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) KGPIP_REQUIRES(mu) {
    RawRef raw(mu);
    cv_.wait(raw, std::move(pred));
  }

  /// Returns false on timeout (like std::cv_status::timeout).
  bool WaitFor(Mutex& mu, double seconds) KGPIP_REQUIRES(mu) {
    RawRef raw(mu);
    return cv_.wait_for(raw, std::chrono::duration<double>(seconds)) ==
           std::cv_status::no_timeout;
  }

  /// Returns the final predicate value (true = condition met, possibly
  /// exactly at the deadline; false = timed out with it still false).
  template <typename Pred>
  bool WaitFor(Mutex& mu, double seconds, Pred pred) KGPIP_REQUIRES(mu) {
    RawRef raw(mu);
    return cv_.wait_for(raw, std::chrono::duration<double>(seconds),
                        std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  /// BasicLockable view of the raw std::mutex inside a util::Mutex, used
  /// only by waits: lock/unlock bypass rank bookkeeping (see the class
  /// comment for why the held stack deliberately keeps the entry).
  class RawRef {
   public:
    explicit RawRef(Mutex& mu) : mu_(mu.mu_) {}
    void lock() { mu_.lock(); }
    void unlock() { mu_.unlock(); }

   private:
    std::mutex& mu_;
  };

  std::condition_variable_any cv_;
};

}  // namespace kgpip::util

#endif  // KGPIP_UTIL_MUTEX_H_
