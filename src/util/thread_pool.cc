#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <limits>
#include <memory>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/request_context.h"
#include "util/stopwatch.h"

namespace kgpip::util {

namespace {

/// True while the current thread is executing a pool task; nested
/// ParallelFor calls detect this and run inline (see header).
thread_local int t_lane = -1;

int EnvThreads() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read-only getenv; the
  // process never mutates its environment after startup.
  const char* env = std::getenv("KGPIP_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  long parsed = std::strtol(env, &end, 10);
  if (end == env || parsed < 0 || parsed > 1024) {
    KGPIP_LOG(Warning) << "ignoring invalid KGPIP_THREADS='" << env << "'";
    return 0;
  }
  return static_cast<int>(parsed);
}

int ResolveThreads(int requested) {
  if (requested <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    requested = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return requested < 1 ? 1 : requested;
}

}  // namespace

/// One parallel loop in flight. Items are pre-split into contiguous
/// chunks; a chunk is the unit of stealing. Completion and exception
/// state live here so concurrent loops (from different threads) never
/// share state.
struct ForLoop {
  size_t n = 0;
  const std::function<void(size_t, size_t)>* body = nullptr;
  /// The submitting thread's request context, re-installed on every lane
  /// that runs one of this loop's chunks: spans/logs emitted inside the
  /// body carry the ids of the request that submitted the loop, even when
  /// a worker interleaves chunks from concurrent requests.
  RequestContext ctx;
  std::atomic<size_t> chunks_left{0};
  Mutex mu{LockRank::kPoolLoop, "pool.loop"};
  CondVar done_cv;
  /// Lowest item index whose body threw, and its exception. Picking the
  /// minimum makes the surfaced error independent of scheduling.
  size_t first_error_item KGPIP_GUARDED_BY(mu) =
      std::numeric_limits<size_t>::max();
  std::exception_ptr first_error KGPIP_GUARDED_BY(mu);
};

/// A contiguous [begin, end) slice of one loop's items.
struct Chunk {
  ForLoop* loop = nullptr;
  size_t begin = 0;
  size_t end = 0;
};

/// Chase–Lev-layout deque: the owning worker pushes and pops at the
/// bottom (LIFO, cache-warm), thieves take from the top (FIFO, the
/// biggest remaining slices first). Guarded by a mutex instead of the
/// lock-free protocol — chunks are coarse, and this keeps the pool
/// trivially TSan-clean.
struct StealDeque {
  Mutex mu{LockRank::kPoolDeque, "pool.deque"};
  std::deque<Chunk> chunks KGPIP_GUARDED_BY(mu);

  void PushBottom(Chunk c) {
    MutexLock lock(mu);
    chunks.push_back(c);
  }
  bool PopBottom(Chunk* out) {
    MutexLock lock(mu);
    if (chunks.empty()) return false;
    *out = chunks.back();
    chunks.pop_back();
    return true;
  }
  bool StealTop(Chunk* out) {
    MutexLock lock(mu);
    if (chunks.empty()) return false;
    *out = chunks.front();
    chunks.pop_front();
    return true;
  }
};

struct ThreadPool::Impl {
  std::vector<std::thread> threads;
  /// One deque per lane: workers 0..W-1 plus the caller lane W.
  std::vector<std::unique_ptr<StealDeque>> deques;
  Mutex wake_mu{LockRank::kPoolWake, "pool.wake"};
  CondVar wake_cv;
  std::atomic<bool> shutdown{false};
  /// Bumped on every submission so sleeping workers re-scan the deques.
  std::atomic<uint64_t> epoch{0};

  obs::Counter* tasks_executed;
  obs::Counter* steals;
  obs::Counter* parallel_fors;
  obs::Gauge* queue_depth;
  obs::Histogram* task_seconds;

  Impl() {
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
    tasks_executed = metrics.GetCounter("pool.tasks_executed");
    steals = metrics.GetCounter("pool.steals");
    parallel_fors = metrics.GetCounter("pool.parallel_fors");
    queue_depth = metrics.GetGauge("pool.queue_depth");
    task_seconds = metrics.GetHistogram("pool.task_seconds");
  }

  void RunChunk(const Chunk& chunk) {
    Stopwatch watch;
    ForLoop* loop = chunk.loop;
    // Run the chunk under the loop's request context, restoring this
    // lane's own context afterwards (a steal may execute a chunk for a
    // different request than the one the lane last worked).
    RequestContext saved = ExchangeRequestContext(loop->ctx);
    for (size_t i = chunk.begin; i < chunk.end; ++i) {
      try {
        (*loop->body)(i, static_cast<size_t>(t_lane));
      } catch (...) {
        MutexLock lock(loop->mu);
        if (i < loop->first_error_item) {
          loop->first_error_item = i;
          loop->first_error = std::current_exception();
        }
      }
    }
    ExchangeRequestContext(std::move(saved));
    tasks_executed->Increment();
    task_seconds->Record(watch.ElapsedSeconds());
    // Decrement + notify under the loop mutex: the waiter also inspects
    // chunks_left under it, so the ForLoop cannot be destroyed between
    // our decrement and the notify (no use-after-free window).
    MutexLock lock(loop->mu);
    if (loop->chunks_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      loop->done_cv.NotifyAll();
    }
  }

  /// Pops from the lane's own deque, then sweeps the others starting at
  /// the next lane (a fixed scan order keeps contention spread without a
  /// per-thread RNG; results never depend on who wins a steal).
  bool FindWork(size_t lane, Chunk* out) {
    if (deques[lane]->PopBottom(out)) return true;
    for (size_t off = 1; off < deques.size(); ++off) {
      size_t victim = (lane + off) % deques.size();
      if (deques[victim]->StealTop(out)) {
        steals->Increment();
        return true;
      }
    }
    return false;
  }

  void WorkerMain(size_t lane) {
    t_lane = static_cast<int>(lane);
    uint64_t seen_epoch = 0;
    while (true) {
      Chunk chunk;
      if (FindWork(lane, &chunk)) {
        RunChunk(chunk);
        continue;
      }
      MutexLock lock(wake_mu);
      if (shutdown.load(std::memory_order_acquire)) return;
      if (epoch.load(std::memory_order_acquire) != seen_epoch) {
        seen_epoch = epoch.load(std::memory_order_acquire);
        continue;  // new work arrived while we were scanning
      }
      // Predicate-based wait: shutdown/epoch publications happen under
      // wake_mu (see ParallelFor and ~ThreadPool), so a store cannot
      // land between this predicate check and the block — no lost
      // wakeup — and spurious wakeups simply re-check.
      wake_cv.Wait(wake_mu, [&] {
        return shutdown.load(std::memory_order_acquire) ||
               epoch.load(std::memory_order_acquire) != seen_epoch;
      });
      seen_epoch = epoch.load(std::memory_order_acquire);
    }
  }
};

ThreadPool::ThreadPool(int num_threads) : impl_(new Impl()) {
  const int lanes = ResolveThreads(num_threads);
  // Lane `num_workers_` is the submitting thread; spawn one fewer worker.
  num_workers_ = lanes - 1;
  for (int i = 0; i < lanes; ++i) {
    impl_->deques.push_back(std::make_unique<StealDeque>());
  }
  for (int w = 0; w < num_workers_; ++w) {
    impl_->threads.emplace_back(
        [this, w] { impl_->WorkerMain(static_cast<size_t>(w)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(impl_->wake_mu);
    impl_->shutdown.store(true, std::memory_order_release);
  }
  impl_->wake_cv.NotifyAll();
  for (std::thread& t : impl_->threads) t.join();
  delete impl_;
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t item, size_t lane)>& body) {
  if (n == 0) return;
  const size_t workers = static_cast<size_t>(num_workers_);
  // Inline paths: single-lane pool, trivially small loops, or a nested
  // call from inside a pool task (running inline on the worker keeps the
  // pool deadlock-free and the nesting deterministic).
  if (workers == 0 || n == 1 || t_lane >= 0) {
    const size_t lane =
        t_lane >= 0 ? static_cast<size_t>(t_lane) : workers;
    for (size_t i = 0; i < n; ++i) body(i, lane);
    return;
  }

  KGPIP_TRACE_SPAN("pool.parallel_for");
  impl_->parallel_fors->Increment();

  ForLoop loop;
  loop.n = n;
  loop.body = &body;
  loop.ctx = CurrentRequestContext();
  // ~4 chunks per lane bounds steal traffic while leaving enough slack
  // for stealing to rebalance skewed item costs.
  const size_t lanes = workers + 1;
  size_t num_chunks = std::min(n, lanes * 4);
  const size_t base = n / num_chunks;
  const size_t extra = n % num_chunks;
  loop.chunks_left.store(num_chunks, std::memory_order_release);
  impl_->queue_depth->Set(static_cast<double>(num_chunks));

  // Deal chunks round-robin across every lane's deque (submitter
  // included), then wake the workers.
  size_t begin = 0;
  for (size_t c = 0; c < num_chunks; ++c) {
    size_t len = base + (c < extra ? 1 : 0);
    Chunk chunk{&loop, begin, begin + len};
    begin += len;
    impl_->deques[c % lanes]->PushBottom(chunk);
  }
  {
    MutexLock lock(impl_->wake_mu);
    impl_->epoch.fetch_add(1, std::memory_order_acq_rel);
  }
  impl_->wake_cv.NotifyAll();

  // The submitting thread works lane `workers` until the loop drains.
  t_lane = static_cast<int>(workers);
  Chunk chunk;
  while (loop.chunks_left.load(std::memory_order_acquire) > 0 &&
         impl_->FindWork(workers, &chunk)) {
    impl_->RunChunk(chunk);
  }
  t_lane = -1;
  std::exception_ptr first_error;
  {
    MutexLock lock(loop.mu);
    loop.done_cv.Wait(loop.mu, [&] {
      return loop.chunks_left.load(std::memory_order_acquire) == 0;
    });
    // Copy the error out under the lock (it is mu-guarded state).
    first_error = loop.first_error;
  }
  impl_->queue_depth->Set(0.0);
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t item)>& body) {
  ParallelFor(n, [&](size_t i, size_t /*lane*/) { body(i); });
}

namespace {

Mutex g_pool_mu{LockRank::kPoolRegistry, "pool.registry"};
ThreadPool* g_pool KGPIP_GUARDED_BY(g_pool_mu) = nullptr;
int g_configured_threads KGPIP_GUARDED_BY(g_pool_mu) =
    0;  // 0 = use KGPIP_THREADS / hardware

}  // namespace

ThreadPool& ThreadPool::Global() {
  MutexLock lock(g_pool_mu);
  if (g_pool == nullptr) {
    int threads = g_configured_threads > 0 ? g_configured_threads
                                           : EnvThreads();
    g_pool = new ThreadPool(threads);
  }
  return *g_pool;
}

int ThreadPool::PlannedThreads() {
  MutexLock lock(g_pool_mu);
  if (g_pool != nullptr) return g_pool->num_lanes();
  int threads = g_configured_threads > 0 ? g_configured_threads
                                         : EnvThreads();
  return ResolveThreads(threads);
}

void ThreadPool::Configure(int num_threads) {
  KGPIP_CHECK(t_lane < 0)
      << "ThreadPool::Configure called from inside a pool task";
  MutexLock lock(g_pool_mu);
  g_configured_threads = num_threads;
  delete g_pool;  // joins workers; pool.registry > pool.wake in the table
  g_pool = nullptr;
}

std::vector<Rng> ForkRngs(Rng* parent, size_t n) {
  std::vector<Rng> forks;
  forks.reserve(n);
  for (size_t i = 0; i < n; ++i) forks.push_back(parent->Fork());
  return forks;
}

}  // namespace kgpip::util
