#ifndef KGPIP_UTIL_STOPWATCH_H_
#define KGPIP_UTIL_STOPWATCH_H_

#include <chrono>
#include <limits>

namespace kgpip {

/// Wall-clock stopwatch used for budget accounting and benchmark reporting.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock deadline; `Expired()` turns true after `seconds` elapse.
/// A non-positive limit means "no deadline".
class Deadline {
 public:
  explicit Deadline(double seconds) : limit_seconds_(seconds) {}

  bool Expired() const {
    return limit_seconds_ > 0.0 && watch_.ElapsedSeconds() >= limit_seconds_;
  }

  /// Remaining seconds; never negative. "No deadline" reports +infinity
  /// (which survives arithmetic like the (T - t) / K split: inf / k is
  /// still inf, and a Deadline built from it never expires).
  double RemainingSeconds() const {
    if (limit_seconds_ <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    double rem = limit_seconds_ - watch_.ElapsedSeconds();
    return rem > 0.0 ? rem : 0.0;
  }

  double limit_seconds() const { return limit_seconds_; }
  double ElapsedSeconds() const { return watch_.ElapsedSeconds(); }

 private:
  double limit_seconds_;
  Stopwatch watch_;
};

}  // namespace kgpip

#endif  // KGPIP_UTIL_STOPWATCH_H_
