#ifndef KGPIP_UTIL_RNG_H_
#define KGPIP_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

namespace kgpip {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// The whole library routes randomness through this class so that every
/// experiment is reproducible from a single seed, independent of the
/// platform's std::mt19937 implementation details.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0xC0FFEE123456789ULL) { Seed(seed); }

  /// Re-seeds the generator via SplitMix64 expansion of `seed`.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformInt(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller.
  double Normal() {
    if (have_cached_normal_) {
      have_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = Uniform();
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    have_cached_normal_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index from an unnormalized non-negative weight span.
  /// Falls back to uniform if the weights sum to zero. Consumes exactly
  /// one Uniform() draw (or one Next() on the fallback path).
  size_t Categorical(const double* weights, size_t n) {
    double total = std::accumulate(weights, weights + n, 0.0);
    if (total <= 0.0) return UniformInt(n);
    double u = Uniform() * total;
    for (size_t i = 0; i < n; ++i) {
      u -= weights[i];
      if (u <= 0.0) return i;
    }
    return n - 1;
  }

  /// Vector convenience overload of the span version above.
  size_t Categorical(const std::vector<double>& weights) {
    return Categorical(weights.data(), weights.size());
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Returns a random permutation of [0, n).
  std::vector<size_t> Permutation(size_t n) {
    std::vector<size_t> p(n);
    std::iota(p.begin(), p.end(), 0);
    Shuffle(p);
    return p;
  }

  /// Forks a statistically independent child generator; used to give each
  /// subsystem its own stream without cross-coupling consumption order.
  Rng Fork() { return Rng(Next() ^ 0xA5A5A5A5DEADBEEFULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace kgpip

#endif  // KGPIP_UTIL_RNG_H_
