#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace kgpip {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(v.size() - 1));
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t n = v.size();
  if (n % 2 == 1) return v[n / 2];
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  KGPIP_CHECK(x.size() == y.size());
  size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = Mean(x);
  double my = Mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> AverageRanks(const std::vector<double>& v) {
  size_t n = v.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) /
                          2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  KGPIP_CHECK(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(AverageRanks(x), AverageRanks(y));
}

namespace {

/// Continued-fraction evaluation for the incomplete beta (Lentz's method).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;
  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double ln_beta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  double front = std::exp(ln_beta + a * std::log(x) + b * std::log(1.0 - x));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTTwoTailedPValue(double t, double df) {
  if (df <= 0.0) return 1.0;
  if (!std::isfinite(t)) return 0.0;
  double x = df / (df + t * t);
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

TTestResult PairedTTest(const std::vector<double>& x,
                        const std::vector<double>& y) {
  KGPIP_CHECK(x.size() == y.size());
  TTestResult out;
  size_t n = x.size();
  if (n < 2) return out;
  std::vector<double> diff(n);
  for (size_t i = 0; i < n; ++i) diff[i] = x[i] - y[i];
  double md = Mean(diff);
  double sd = StdDev(diff);
  out.degrees_of_freedom = static_cast<double>(n - 1);
  if (sd <= 0.0) {
    out.t_statistic = md == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
    out.p_value = md == 0.0 ? 1.0 : 0.0;
    return out;
  }
  out.t_statistic = md / (sd / std::sqrt(static_cast<double>(n)));
  out.p_value = StudentTTwoTailedPValue(out.t_statistic,
                                        out.degrees_of_freedom);
  return out;
}

TTestResult WelchTTest(const std::vector<double>& x,
                       const std::vector<double>& y) {
  TTestResult out;
  if (x.size() < 2 || y.size() < 2) return out;
  double mx = Mean(x);
  double my = Mean(y);
  double vx = StdDev(x);
  double vy = StdDev(y);
  vx *= vx;
  vy *= vy;
  double nx = static_cast<double>(x.size());
  double ny = static_cast<double>(y.size());
  double se2 = vx / nx + vy / ny;
  if (se2 <= 0.0) {
    out.p_value = mx == my ? 1.0 : 0.0;
    return out;
  }
  out.t_statistic = (mx - my) / std::sqrt(se2);
  out.degrees_of_freedom =
      se2 * se2 /
      (vx * vx / (nx * nx * (nx - 1.0)) + vy * vy / (ny * ny * (ny - 1.0)));
  out.p_value = StudentTTwoTailedPValue(out.t_statistic,
                                        out.degrees_of_freedom);
  return out;
}

double MeanReciprocalRank(const std::vector<int>& ranks) {
  if (ranks.empty()) return 0.0;
  double sum = 0.0;
  for (int r : ranks) {
    if (r > 0) sum += 1.0 / static_cast<double>(r);
  }
  return sum / static_cast<double>(ranks.size());
}

double SilhouetteScore(const std::vector<std::vector<double>>& points,
                       const std::vector<int>& labels) {
  KGPIP_CHECK(points.size() == labels.size());
  size_t n = points.size();
  if (n < 2) return 0.0;
  auto dist = [&](size_t i, size_t j) {
    double s = 0.0;
    for (size_t d = 0; d < points[i].size(); ++d) {
      double diff = points[i][d] - points[j][d];
      s += diff * diff;
    }
    return std::sqrt(s);
  };
  double total = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < n; ++i) {
    double intra_sum = 0.0;
    size_t intra_count = 0;
    // mean distance to each other cluster, keyed by label.
    std::vector<int> other_labels;
    std::vector<double> other_sums;
    std::vector<size_t> other_counts;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double d = dist(i, j);
      if (labels[j] == labels[i]) {
        intra_sum += d;
        ++intra_count;
      } else {
        size_t k = 0;
        for (; k < other_labels.size(); ++k) {
          if (other_labels[k] == labels[j]) break;
        }
        if (k == other_labels.size()) {
          other_labels.push_back(labels[j]);
          other_sums.push_back(0.0);
          other_counts.push_back(0);
        }
        other_sums[k] += d;
        ++other_counts[k];
      }
    }
    if (intra_count == 0 || other_labels.empty()) continue;
    double a = intra_sum / static_cast<double>(intra_count);
    double b = std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < other_labels.size(); ++k) {
      b = std::min(b, other_sums[k] / static_cast<double>(other_counts[k]));
    }
    double denom = std::max(a, b);
    if (denom > 0.0) {
      total += (b - a) / denom;
      ++counted;
    }
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace kgpip
