#ifndef KGPIP_UTIL_REQUEST_CONTEXT_H_
#define KGPIP_UTIL_REQUEST_CONTEXT_H_

#include <cstdint>
#include <string>

namespace kgpip::util {

/// Identity of the serve request the calling thread is currently working
/// for. The serving daemon assigns each admitted request a process-unique
/// id and installs a context on the worker executing it; the thread pool
/// re-installs the submitting thread's context on every lane that runs a
/// chunk of one of its ParallelFor bodies, so spans and log records
/// emitted deep inside Fit / HPO trials / GenerateTopK carry the ids of
/// the request that caused them — even when pool lanes interleave chunks
/// from concurrent requests.
///
/// `request_id == 0` means "no request" (startup, tests, bench mains).
struct RequestContext {
  uint64_t request_id = 0;
  std::string tenant;

  bool active() const { return request_id != 0; }
};

/// The calling thread's current context (inactive default when none is
/// installed). The reference is to a thread_local: do not hold it across
/// a ScopedRequestContext boundary.
const RequestContext& CurrentRequestContext();

/// Replaces the calling thread's context, returning the previous one.
/// Prefer ScopedRequestContext; this exists for the thread pool, which
/// installs/restores around each chunk it runs for a foreign loop.
RequestContext ExchangeRequestContext(RequestContext context);

/// RAII context installer; restores the previous context on destruction,
/// so nested scopes (a worker briefly answering from cache inside another
/// request's unwind, tests) compose.
class ScopedRequestContext {
 public:
  ScopedRequestContext(uint64_t request_id, std::string tenant)
      : saved_(ExchangeRequestContext(
            RequestContext{request_id, std::move(tenant)})) {}
  ~ScopedRequestContext() { ExchangeRequestContext(std::move(saved_)); }

  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  RequestContext saved_;
};

}  // namespace kgpip::util

#endif  // KGPIP_UTIL_REQUEST_CONTEXT_H_
