#include "util/fault.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace kgpip::util {

namespace {

/// Published atomically: pool-lane fault sites read it while the scope's
/// owning thread installs/clears it.
std::atomic<FaultInjector*> g_active{nullptr};

/// Site identifiers feeding the decision hash; stable across runs.
enum Site {
  kSiteEvaluatorError = 1,
  kSiteResourceExhausted = 2,
  kSiteNanScore = 3,
  kSiteSlowTrial = 4,
};

/// SplitMix64 finalizer — turns a structured key into white bits.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector* FaultInjector::Active() {
  return g_active.load(std::memory_order_acquire);
}

bool FaultInjector::Roll(int site, const std::string& key, double rate) {
  if (rate <= 0.0) return false;
  uint64_t index = calls_[{site, key}]++;
  uint64_t h = Mix(config_.seed ^ Mix(static_cast<uint64_t>(site)) ^
                   Fnv1a64(key) ^ Mix(index * 0x2545F4914F6CDD1DULL));
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

std::optional<Status> FaultInjector::EvaluatorFault(
    const std::string& learner) {
  MutexLock lock(mu_);
  if (config_.fail_learners.count(learner) > 0) {
    ++counters_.evaluator_errors;
    return Status::Internal("injected: learner '" + learner +
                            "' always fails");
  }
  if (Roll(kSiteEvaluatorError, learner, config_.evaluator_error_rate)) {
    ++counters_.evaluator_errors;
    return Status::Internal("injected evaluator error for '" + learner +
                            "'");
  }
  if (Roll(kSiteResourceExhausted, learner,
           config_.resource_exhausted_rate)) {
    ++counters_.resource_exhausted;
    return Status::ResourceExhausted("injected transient exhaustion for '" +
                                     learner + "'");
  }
  return std::nullopt;
}

bool FaultInjector::InjectNanScore(const std::string& learner) {
  MutexLock lock(mu_);
  if (Roll(kSiteNanScore, learner, config_.nan_score_rate)) {
    ++counters_.nan_scores;
    return true;
  }
  return false;
}

double FaultInjector::InjectedDelaySeconds(const std::string& learner) {
  MutexLock lock(mu_);
  if (Roll(kSiteSlowTrial, learner, config_.slow_trial_rate)) {
    ++counters_.slow_trials;
    return config_.slow_trial_seconds;
  }
  return 0.0;
}

void FaultInjector::CorruptArtifact(std::string* payload) {
  MutexLock lock(mu_);
  if (config_.corrupt_byte_stride <= 0 || payload->empty()) return;
  for (size_t i = 0; i < payload->size();
       i += static_cast<size_t>(config_.corrupt_byte_stride)) {
    (*payload)[i] = static_cast<char>((*payload)[i] ^ 0x20);
    ++counters_.corrupted_bytes;
  }
}

ScopedFaultInjection::ScopedFaultInjection(FaultConfig config)
    : injector_(std::move(config)) {
  KGPIP_CHECK(g_active.load(std::memory_order_acquire) == nullptr)
      << "nested ScopedFaultInjection scopes are not supported";
  g_active.store(&injector_, std::memory_order_release);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  g_active.store(nullptr, std::memory_order_release);
}

}  // namespace kgpip::util
