#ifndef KGPIP_UTIL_STATS_H_
#define KGPIP_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace kgpip {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& v);

/// Sample standard deviation (n-1 denominator); 0 if fewer than 2 items.
double StdDev(const std::vector<double>& v);

double Median(std::vector<double> v);

/// Pearson product-moment correlation; 0 if either side is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation (average ranks for ties).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Result of a two-tailed Student's t-test.
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;
};

/// Paired two-tailed t-test (the paper compares per-dataset scores of two
/// systems over the same datasets). Requires x.size() == y.size() >= 2.
TTestResult PairedTTest(const std::vector<double>& x,
                        const std::vector<double>& y);

/// Welch's two-sample two-tailed t-test.
TTestResult WelchTTest(const std::vector<double>& x,
                       const std::vector<double>& y);

/// Mean Reciprocal Rank for 1-based ranks; rank <= 0 counts as a miss (0).
double MeanReciprocalRank(const std::vector<int>& ranks);

/// Regularized incomplete beta function I_x(a, b), used for the Student's t
/// CDF. Exposed for testing.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Two-tailed p-value for a t statistic with `df` degrees of freedom.
double StudentTTwoTailedPValue(double t, double df);

/// Silhouette score for a labeled embedding set under Euclidean distance;
/// used to quantify Figure 10's "datasets from the same domain cluster".
double SilhouetteScore(const std::vector<std::vector<double>>& points,
                       const std::vector<int>& labels);

/// Ranks with average tie handling (1-based ranks as doubles).
std::vector<double> AverageRanks(const std::vector<double>& v);

}  // namespace kgpip

#endif  // KGPIP_UTIL_STATS_H_
