#include "data/synthetic.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace kgpip {

namespace {

constexpr int kLatentDim = 6;

struct DomainProfile {
  const char* numeric_names[8];
  const char* categorical_names[4];
  const char* text_name;
  const char* tokens[12];
  double offset_lo;
  double offset_hi;
  double scale_lo;
  double scale_hi;
  int cat_cardinality;
};

const DomainProfile& GetDomainProfile(Domain domain) {
  static const DomainProfile kSalesProfile = {
      {"price", "quantity", "discount", "revenue", "margin", "units",
       "basket_size", "returns"},
      {"region", "channel", "category", "segment"},
      "product_review",
      {"order", "store", "promo", "sku", "client", "cart", "ship",
       "invoice", "retail", "deal", "stock", "brand"},
      50.0, 500.0, 5.0, 80.0, 6};
  static const DomainProfile kFinanceProfile = {
      {"balance", "credit_limit", "income", "debt_ratio", "tenure",
       "num_accounts", "late_payments", "utilization"},
      {"account_type", "employment", "grade", "purpose"},
      "loan_description",
      {"loan", "credit", "rate", "bank", "fund", "yield", "bond",
       "equity", "risk", "asset", "payment", "mortgage"},
      1000.0, 20000.0, 100.0, 5000.0, 7};
  static const DomainProfile kHealthcareProfile = {
      {"age", "bmi", "blood_pressure", "glucose", "cholesterol",
       "heart_rate", "insulin", "visits"},
      {"gender", "smoker", "diagnosis", "ward"},
      "clinical_notes",
      {"patient", "dose", "symptom", "chronic", "lab", "scan",
       "therapy", "acute", "clinic", "nurse", "relapse", "vital"},
      20.0, 120.0, 2.0, 30.0, 4};
  static const DomainProfile kReviewsProfile = {
      {"stars", "helpful_votes", "review_length", "user_karma",
       "num_reviews", "days_since", "upvotes", "readability"},
      {"verified", "platform", "language", "product_line"},
      "review_text",
      {"great", "terrible", "love", "hate", "excellent", "poor",
       "amazing", "awful", "recommend", "refund", "quality", "broken"},
      0.0, 5.0, 0.5, 3.0, 3};
  static const DomainProfile kSensorsProfile = {
      {"temperature", "humidity", "pressure", "vibration", "voltage",
       "current", "rpm", "acoustic"},
      {"machine_id", "shift", "site", "firmware"},
      "maintenance_log",
      {"sensor", "fault", "drift", "calibrate", "threshold", "alarm",
       "cycle", "motor", "bearing", "spike", "reading", "gauge"},
      -2.0, 2.0, 0.1, 1.5, 8};
  static const DomainProfile kGamesProfile = {
      {"move_count", "piece_value", "mobility", "king_safety",
       "pawn_structure", "material", "tempo", "threats"},
      {"opening", "side", "time_control", "phase"},
      "game_notes",
      {"check", "mate", "gambit", "castle", "endgame", "blunder",
       "fork", "pin", "rank", "file", "knight", "rook"},
      0.0, 40.0, 1.0, 10.0, 5};
  static const DomainProfile kVisionProfile = {
      {"pixel_mean", "pixel_var", "edge_density", "contrast",
       "brightness", "saturation", "entropy", "gradient"},
      {"orientation", "capture_device", "lighting", "background"},
      "caption",
      {"image", "blur", "sharp", "object", "corner", "texture",
       "patch", "mask", "frame", "channel", "filter", "crop"},
      0.0, 255.0, 10.0, 60.0, 4};
  static const DomainProfile kPhysicsProfile = {
      {"energy", "momentum", "mass", "angle", "velocity", "charge",
       "spin", "decay_time"},
      {"detector", "run_type", "trigger", "beam"},
      "event_log",
      {"particle", "collision", "jet", "muon", "hadron", "boson",
       "lepton", "quark", "track", "vertex", "signal", "background"},
      -5.0, 5.0, 0.5, 5.0, 4};
  static const DomainProfile kWebProfile = {
      {"session_length", "clicks", "page_views", "bounce_rate",
       "latency_ms", "requests", "unique_ips", "conversion"},
      {"browser", "country", "referrer", "device"},
      "query_text",
      {"click", "search", "landing", "banner", "mobile", "session",
       "visit", "funnel", "cookie", "cache", "scroll", "widget"},
      0.0, 1000.0, 10.0, 200.0, 9};
  static const DomainProfile kGenericProfile = {
      {"feature_a", "feature_b", "feature_c", "feature_d", "feature_e",
       "feature_f", "feature_g", "feature_h"},
      {"group", "kind", "bucket", "flag"},
      "notes",
      {"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta",
       "theta", "iota", "kappa", "lambda", "mu"},
      0.0, 10.0, 0.5, 5.0, 5};
  switch (domain) {
    case Domain::kSales:
      return kSalesProfile;
    case Domain::kFinance:
      return kFinanceProfile;
    case Domain::kHealthcare:
      return kHealthcareProfile;
    case Domain::kReviews:
      return kReviewsProfile;
    case Domain::kSensors:
      return kSensorsProfile;
    case Domain::kGames:
      return kGamesProfile;
    case Domain::kVision:
      return kVisionProfile;
    case Domain::kPhysics:
      return kPhysicsProfile;
    case Domain::kWeb:
      return kWebProfile;
    case Domain::kGeneric:
      return kGenericProfile;
  }
  return kGenericProfile;
}

/// Number of numeric columns that carry latent signal for a family.
int InformativeNumeric(ConceptFamily family, int num_numeric) {
  switch (family) {
    case ConceptFamily::kSparse:
      return std::min(3, num_numeric);
    case ConceptFamily::kNoise:
      return std::min(1, num_numeric);
    default:
      return std::min(kLatentDim, num_numeric);
  }
}

/// Continuous family score used for both the regression target and (via
/// per-class shifts / thresholds) classification labels.
double FamilyScore(ConceptFamily family, const double* z, Rng* rng,
                   bool regression) {
  switch (family) {
    case ConceptFamily::kLinear:
      return 1.3 * z[0] - 0.9 * z[1] + 0.6 * z[2] + 0.3 * z[3];
    case ConceptFamily::kRules: {
      // Piecewise-constant on axis-aligned cells.
      double s = 0.0;
      s += z[0] > 0.4 ? 2.0 : -1.0;
      s += z[1] > -0.3 ? (z[2] > 0.1 ? 1.5 : -0.5) : 0.8;
      s += z[3] > 0.9 ? -2.2 : 0.0;
      return s;
    }
    case ConceptFamily::kInteractions:
      if (regression) {
        // Friedman-style: a product interaction plus a quadratic and a
        // weak main effect, so greedy regression trees have an entry
        // point while linear models stay far behind.
        return 1.6 * z[0] * z[1] + 1.2 * (z[2] * z[2] - 1.0) +
               0.8 * z[3];
      }
      // Pure products for classification: sign structure that boosting
      // captures and no linear model (even over binned categoricals) can.
      return 2.0 * z[0] * z[1] + 1.4 * z[2] * z[3];
    case ConceptFamily::kSparse:
      return 1.5 * z[0] - 1.1 * z[1] + 0.8 * z[2];
    case ConceptFamily::kClusters:
      // Handled separately for classification; a radial score for
      // regression.
      return std::sqrt(z[0] * z[0] + z[1] * z[1] + z[2] * z[2]);
    case ConceptFamily::kText:
      return 0.4 * z[0];  // weak numeric signal; text carries the label
    case ConceptFamily::kNoise:
      return 0.15 * z[0] + rng->Normal();  // mostly noise
  }
  return 0.0;
}

}  // namespace

const char* ConceptFamilyName(ConceptFamily family) {
  switch (family) {
    case ConceptFamily::kLinear:
      return "linear";
    case ConceptFamily::kRules:
      return "rules";
    case ConceptFamily::kInteractions:
      return "interactions";
    case ConceptFamily::kSparse:
      return "sparse";
    case ConceptFamily::kClusters:
      return "clusters";
    case ConceptFamily::kText:
      return "text";
    case ConceptFamily::kNoise:
      return "noise";
  }
  return "?";
}

const char* DomainName(Domain domain) {
  switch (domain) {
    case Domain::kSales:
      return "sales";
    case Domain::kFinance:
      return "finance";
    case Domain::kHealthcare:
      return "healthcare";
    case Domain::kReviews:
      return "reviews";
    case Domain::kSensors:
      return "sensors";
    case Domain::kGames:
      return "games";
    case Domain::kVision:
      return "vision";
    case Domain::kPhysics:
      return "physics";
    case Domain::kWeb:
      return "web";
    case Domain::kGeneric:
      return "generic";
  }
  return "?";
}

Table GenerateDataset(const DatasetSpec& spec) {
  KGPIP_CHECK(spec.rows > 0);
  Rng rng(spec.seed * 0x9E3779B97F4A7C15ULL + 17);
  const DomainProfile& profile = GetDomainProfile(spec.domain);
  const int n = spec.rows;
  const int classes =
      spec.task == TaskType::kRegression ? 0 : std::max(2, spec.num_classes);

  // Latent features per row.
  std::vector<std::array<double, kLatentDim>> latents(
      static_cast<size_t>(n));
  // Cluster assignment (kClusters) decided up front so features can shift.
  std::vector<int> cluster(static_cast<size_t>(n), 0);
  std::vector<std::array<double, kLatentDim>> centers;
  if (spec.family == ConceptFamily::kClusters) {
    int k = classes > 0 ? classes : 5;
    Rng center_rng(spec.seed ^ 0xABCDEF);
    for (int c = 0; c < k; ++c) {
      std::array<double, kLatentDim> center{};
      for (double& v : center) v = center_rng.Normal() * 2.5;
      centers.push_back(center);
    }
  }
  for (int r = 0; r < n; ++r) {
    if (!centers.empty()) {
      cluster[r] = static_cast<int>(rng.UniformInt(centers.size()));
    }
    for (int d = 0; d < kLatentDim; ++d) {
      double base = rng.Normal();
      if (!centers.empty()) base = base * 0.6 + centers[cluster[r]][d];
      latents[r][d] = base;
    }
  }

  // ----- Labels -----
  std::vector<double> reg_target(static_cast<size_t>(n), 0.0);
  std::vector<int> cls_target(static_cast<size_t>(n), 0);
  Rng label_rng(spec.seed ^ 0x5151);
  if (spec.task == TaskType::kRegression) {
    for (int r = 0; r < n; ++r) {
      reg_target[r] = FamilyScore(spec.family, latents[r].data(),
                                  &label_rng, /*regression=*/true);
    }
    // Scale noise to the target spread.
    double sd = 0.0;
    double mean = 0.0;
    for (double v : reg_target) mean += v;
    mean /= n;
    for (double v : reg_target) sd += (v - mean) * (v - mean);
    sd = std::sqrt(sd / std::max(1, n - 1));
    for (double& v : reg_target) {
      v += label_rng.Normal() * sd * spec.label_noise * 2.0;
    }
  } else if (spec.family == ConceptFamily::kClusters) {
    for (int r = 0; r < n; ++r) cls_target[r] = cluster[r] % classes;
  } else if (spec.family == ConceptFamily::kText) {
    for (int r = 0; r < n; ++r) {
      cls_target[r] = static_cast<int>(label_rng.UniformInt(
          static_cast<uint64_t>(classes)));
    }
  } else {
    // Threshold the continuous score into `classes` quantile bins.
    std::vector<double> scores(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      scores[r] = FamilyScore(spec.family, latents[r].data(), &label_rng,
                              /*regression=*/false);
    }
    std::vector<double> sorted = scores;
    std::sort(sorted.begin(), sorted.end());
    std::vector<double> cuts;
    for (int c = 1; c < classes; ++c) {
      cuts.push_back(sorted[static_cast<size_t>(
          static_cast<double>(n) * c / classes)]);
    }
    for (int r = 0; r < n; ++r) {
      int label = 0;
      while (label < classes - 1 && scores[r] > cuts[label]) ++label;
      cls_target[r] = label;
    }
  }
  // Label noise for classification: flip to a random class.
  if (spec.task != TaskType::kRegression) {
    for (int r = 0; r < n; ++r) {
      if (label_rng.Bernoulli(spec.label_noise)) {
        cls_target[r] = static_cast<int>(label_rng.UniformInt(
            static_cast<uint64_t>(classes)));
      }
    }
  }

  // ----- Feature columns -----
  Table table(spec.name);
  Rng col_rng(spec.seed ^ 0xFEED);
  const int informative = InformativeNumeric(spec.family, spec.num_numeric);

  for (int j = 0; j < spec.num_numeric; ++j) {
    std::string name = profile.numeric_names[j % 8];
    if (j >= 8) name += "_" + std::to_string(j / 8);
    double offset = col_rng.Uniform(profile.offset_lo, profile.offset_hi);
    double scale = col_rng.Uniform(profile.scale_lo, profile.scale_hi);
    std::vector<double> values(static_cast<size_t>(n));
    bool is_informative = j < informative;
    for (int r = 0; r < n; ++r) {
      double base = is_informative
                        ? latents[r][j % kLatentDim] +
                              0.08 * col_rng.Normal()
                        : col_rng.Normal();
      values[r] = offset + scale * base;
    }
    KGPIP_CHECK(table.AddColumn(Column::Numeric(std::move(name),
                                            std::move(values))).ok());
  }

  for (int j = 0; j < spec.num_categorical; ++j) {
    std::string name = profile.categorical_names[j % 4];
    if (j >= 4) name += "_" + std::to_string(j / 4);
    int cardinality = profile.cat_cardinality + (j % 3);
    std::vector<std::string> values(static_cast<size_t>(n));
    // First few categorical columns bin a latent so they are informative.
    bool is_informative = j < 3 && spec.family != ConceptFamily::kNoise;
    int latent_index = (spec.num_numeric + j) % kLatentDim;
    for (int r = 0; r < n; ++r) {
      int bucket;
      if (is_informative) {
        double v = latents[r][latent_index];
        double unit = 0.5 * (1.0 + std::erf(v / std::sqrt(2.0)));
        bucket = std::min(cardinality - 1,
                          static_cast<int>(unit * cardinality));
      } else {
        bucket = static_cast<int>(col_rng.UniformInt(
            static_cast<uint64_t>(cardinality)));
      }
      values[r] = std::string(profile.categorical_names[j % 4]) + "_v" +
                  std::to_string(bucket);
    }
    KGPIP_CHECK(table.AddColumn(Column::Categorical(std::move(name),
                                                std::move(values))).ok());
  }

  for (int j = 0; j < spec.num_text; ++j) {
    std::string name = profile.text_name;
    if (j >= 1) name += "_" + std::to_string(j);
    std::vector<std::string> values(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      int len = static_cast<int>(col_rng.UniformInt(5, 12));
      std::vector<std::string> tokens;
      for (int t = 0; t < len; ++t) {
        tokens.push_back(profile.tokens[col_rng.UniformInt(12)]);
      }
      if (spec.family == ConceptFamily::kText &&
          spec.task != TaskType::kRegression) {
        // Inject 2-3 class-specific keywords; this is the label signal.
        std::string keyword = "topic" + std::to_string(cls_target[r]);
        int copies = static_cast<int>(col_rng.UniformInt(2, 3));
        for (int t = 0; t < copies; ++t) {
          tokens[col_rng.UniformInt(tokens.size())] = keyword;
        }
      }
      values[r] = Join(tokens, " ");
    }
    KGPIP_CHECK(table.AddColumn(Column::Text(std::move(name),
                                         std::move(values))).ok());
  }

  // Missing values on features.
  Rng missing_rng(spec.seed ^ 0xDEAD);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    Column& col = table.mutable_column(c);
    for (int r = 0; r < n; ++r) {
      if (missing_rng.Bernoulli(spec.missing_fraction)) {
        if (col.type() == ColumnType::kNumeric) {
          col.mutable_numeric_values()[static_cast<size_t>(r)] =
              std::numeric_limits<double>::quiet_NaN();
        }
        col.SetMissing(static_cast<size_t>(r), true);
      }
    }
  }

  // Target column.
  if (spec.task == TaskType::kRegression) {
    KGPIP_CHECK(table.AddColumn(Column::Numeric("target",
                                            std::move(reg_target))).ok());
  } else {
    std::vector<std::string> labels(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      labels[r] = "class_" + std::to_string(cls_target[r]);
    }
    KGPIP_CHECK(table.AddColumn(Column::Categorical("target",
                                                std::move(labels))).ok());
  }
  table.set_target_name("target");
  return table;
}

std::vector<std::string> FamilyAffineLearners(ConceptFamily family,
                                              TaskType task) {
  const bool reg = task == TaskType::kRegression;
  switch (family) {
    case ConceptFamily::kLinear:
      return reg ? std::vector<std::string>{"ridge", "linear_regression",
                                            "lasso", "lgbm"}
                 : std::vector<std::string>{"logistic_regression",
                                            "linear_svm", "sgd", "lgbm"};
    case ConceptFamily::kRules:
      return {"xgboost", "decision_tree", "lgbm", "random_forest"};
    case ConceptFamily::kInteractions:
      return {"xgboost", "lgbm", "gradient_boosting", "random_forest",
              "extra_trees"};
    case ConceptFamily::kSparse:
      return reg ? std::vector<std::string>{"lasso", "ridge", "lgbm"}
                 : std::vector<std::string>{"logistic_regression", "sgd",
                                            "lgbm"};
    case ConceptFamily::kClusters:
      return reg ? std::vector<std::string>{"knn", "random_forest",
                                            "extra_trees"}
                 : std::vector<std::string>{"knn", "gaussian_nb",
                                            "random_forest"};
    case ConceptFamily::kText:
      return reg ? std::vector<std::string>{"ridge", "sgd"}
                 : std::vector<std::string>{"sgd", "logistic_regression",
                                            "gaussian_nb"};
    case ConceptFamily::kNoise:
      return reg ? std::vector<std::string>{"lgbm", "ridge"}
                 : std::vector<std::string>{"lgbm", "logistic_regression"};
  }
  return {};
}

}  // namespace kgpip
