#include "data/table.h"

#include "util/rng.h"

namespace kgpip {

const char* TaskTypeName(TaskType task) {
  switch (task) {
    case TaskType::kBinaryClassification:
      return "binary";
    case TaskType::kMultiClassification:
      return "multi-class";
    case TaskType::kRegression:
      return "regression";
  }
  return "?";
}

bool IsClassification(TaskType task) {
  return task != TaskType::kRegression;
}

Status Table::AddColumn(Column column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        "column '" + column.name() + "' has " +
        std::to_string(column.size()) + " rows, table has " +
        std::to_string(num_rows()));
  }
  if (FindColumn(column.name()).has_value()) {
    return Status::InvalidArgument("duplicate column name '" +
                                   column.name() + "'");
  }
  columns_.push_back(std::move(column));
  return Status::Ok();
}

std::optional<size_t> Table::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return i;
  }
  return std::nullopt;
}

Result<const Column*> Table::TargetColumn() const {
  if (target_name_.empty()) {
    return Status::FailedPrecondition("table '" + name_ +
                                      "' has no target column set");
  }
  auto idx = FindColumn(target_name_);
  if (!idx.has_value()) {
    return Status::NotFound("target column '" + target_name_ +
                            "' not present in table '" + name_ + "'");
  }
  return &columns_[*idx];
}

Table Table::TakeRows(const std::vector<size_t>& indices) const {
  Table out(name_);
  out.target_name_ = target_name_;
  for (const Column& c : columns_) {
    out.columns_.push_back(c.Take(indices));
  }
  return out;
}

Table Table::DropTarget() const {
  Table out(name_);
  for (const Column& c : columns_) {
    if (c.name() == target_name_) continue;
    out.columns_.push_back(c);
  }
  return out;
}

size_t Table::CountType(ColumnType type) const {
  size_t n = 0;
  for (const Column& c : columns_) {
    if (c.name() == target_name_) continue;
    if (c.type() == type) ++n;
  }
  return n;
}

TrainTestSplit SplitTable(const Table& table, double test_fraction,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> perm = rng.Permutation(table.num_rows());
  size_t test_size = static_cast<size_t>(
      static_cast<double>(table.num_rows()) * test_fraction);
  if (test_size == 0 && table.num_rows() > 1) test_size = 1;
  std::vector<size_t> test_idx(perm.begin(), perm.begin() + test_size);
  std::vector<size_t> train_idx(perm.begin() + test_size, perm.end());
  TrainTestSplit out;
  out.train = table.TakeRows(train_idx);
  out.test = table.TakeRows(test_idx);
  return out;
}

std::vector<int> KFoldAssignment(size_t num_rows, int k, uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> perm = rng.Permutation(num_rows);
  std::vector<int> fold(num_rows, 0);
  for (size_t i = 0; i < num_rows; ++i) {
    fold[perm[i]] = static_cast<int>(i % static_cast<size_t>(k));
  }
  return fold;
}

}  // namespace kgpip
