#ifndef KGPIP_DATA_COLUMN_H_
#define KGPIP_DATA_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kgpip {

/// Logical column types after inference. The paper's preprocessing
/// (§3.6) distinguishes numerical, categorical and textual columns.
enum class ColumnType { kNumeric, kCategorical, kText };

const char* ColumnTypeName(ColumnType type);

/// A single named, typed column with an explicit missing-value mask.
///
/// Numeric columns store doubles; categorical and text columns store
/// strings. Missingness is tracked in a parallel mask so imputers can
/// distinguish "empty string" from "absent".
class Column {
 public:
  Column() = default;

  /// Factory for a numeric column. NaNs in `values` are marked missing.
  static Column Numeric(std::string name, std::vector<double> values);
  /// Factory for a categorical column; empty strings are marked missing.
  static Column Categorical(std::string name,
                            std::vector<std::string> values);
  /// Factory for a free-text column; empty strings are marked missing.
  static Column Text(std::string name, std::vector<std::string> values);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  ColumnType type() const { return type_; }
  size_t size() const {
    return type_ == ColumnType::kNumeric ? numeric_.size() : strings_.size();
  }

  bool IsMissing(size_t row) const { return missing_[row] != 0; }
  size_t MissingCount() const;

  /// Numeric access. Precondition: type() == kNumeric.
  double NumericAt(size_t row) const { return numeric_[row]; }
  const std::vector<double>& numeric_values() const { return numeric_; }
  std::vector<double>& mutable_numeric_values() { return numeric_; }

  /// String access. Precondition: type() != kNumeric.
  const std::string& StringAt(size_t row) const { return strings_[row]; }
  const std::vector<std::string>& string_values() const { return strings_; }

  void SetMissing(size_t row, bool missing) { missing_[row] = missing; }

  /// Number of distinct non-missing values.
  size_t DistinctCount() const;

  /// Returns a copy containing only the rows in `indices` (in order).
  Column Take(const std::vector<size_t>& indices) const;

 private:
  std::string name_;
  ColumnType type_ = ColumnType::kNumeric;
  std::vector<double> numeric_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> missing_;
};

}  // namespace kgpip

#endif  // KGPIP_DATA_COLUMN_H_
