#include "data/type_inference.h"

#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace kgpip {

namespace {

size_t CountTokens(const std::string& s) {
  size_t tokens = 0;
  bool in_token = false;
  for (char c : s) {
    bool ws = c == ' ' || c == '\t';
    if (!ws && !in_token) {
      ++tokens;
      in_token = true;
    } else if (ws) {
      in_token = false;
    }
  }
  return tokens;
}

/// Re-types one string column according to the heuristics.
Column RetypeColumn(const Column& col, const TypeInferenceOptions& options) {
  const size_t n = col.size();
  size_t non_missing = 0;
  size_t numeric_ok = 0;
  size_t token_total = 0;
  for (size_t i = 0; i < n; ++i) {
    if (col.IsMissing(i)) continue;
    ++non_missing;
    double v = 0.0;
    if (ParseDouble(col.StringAt(i), &v)) ++numeric_ok;
    token_total += CountTokens(col.StringAt(i));
  }
  if (non_missing == 0) {
    // All-missing column: keep as categorical of NaNs.
    return col;
  }
  const double numeric_frac =
      static_cast<double>(numeric_ok) / static_cast<double>(non_missing);
  if (numeric_frac >= options.numeric_threshold) {
    std::vector<double> values(n, std::numeric_limits<double>::quiet_NaN());
    for (size_t i = 0; i < n; ++i) {
      if (col.IsMissing(i)) continue;
      double v = 0.0;
      if (ParseDouble(col.StringAt(i), &v)) values[i] = v;
    }
    return Column::Numeric(col.name(), std::move(values));
  }
  const double mean_tokens =
      static_cast<double>(token_total) / static_cast<double>(non_missing);
  const size_t distinct = col.DistinctCount();
  const double distinct_ratio =
      static_cast<double>(distinct) / static_cast<double>(non_missing);
  const bool looks_categorical =
      distinct <= options.categorical_max_distinct ||
      distinct_ratio <= options.categorical_distinct_ratio;
  if (mean_tokens >= options.text_min_mean_tokens || !looks_categorical) {
    return Column::Text(col.name(), col.string_values());
  }
  return Column::Categorical(col.name(), col.string_values());
}

}  // namespace

Status InferColumnTypes(Table* table, const TypeInferenceOptions& options) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  for (size_t i = 0; i < table->num_columns(); ++i) {
    const Column& col = table->column(i);
    if (col.type() == ColumnType::kNumeric) continue;
    table->mutable_column(i) = RetypeColumn(col, options);
  }
  return Status::Ok();
}

Result<TaskType> DetectTask(const Table& table) {
  KGPIP_ASSIGN_OR_RETURN(const Column* target, table.TargetColumn());
  if (target->type() != ColumnType::kNumeric) {
    return target->DistinctCount() <= 2 ? TaskType::kBinaryClassification
                                        : TaskType::kMultiClassification;
  }
  // Numeric target: classification when values are a small set of integers.
  size_t non_missing = 0;
  bool all_integers = true;
  for (size_t i = 0; i < target->size(); ++i) {
    if (target->IsMissing(i)) continue;
    ++non_missing;
    double v = target->NumericAt(i);
    if (v != std::floor(v)) {
      all_integers = false;
      break;
    }
  }
  if (non_missing == 0) {
    return Status::InvalidArgument("target column '" + target->name() +
                                   "' is entirely missing");
  }
  size_t distinct = target->DistinctCount();
  if (all_integers && distinct <= 20 &&
      static_cast<double>(distinct) <
          0.2 * static_cast<double>(non_missing)) {
    return distinct <= 2 ? TaskType::kBinaryClassification
                         : TaskType::kMultiClassification;
  }
  return TaskType::kRegression;
}

}  // namespace kgpip
