#ifndef KGPIP_DATA_BENCHMARK_REGISTRY_H_
#define KGPIP_DATA_BENCHMARK_REGISTRY_H_

#include <string>
#include <vector>

#include "data/synthetic.h"
#include "util/status.h"

namespace kgpip {

/// Registry of every dataset in the paper's evaluation (Table 4: 39 Open
/// AutoML Benchmark + 23 PMLB + 9 OpenML + 6 Kaggle = 77), each mapped to a
/// synthetic generator spec whose shape matches the published statistics
/// (scaled down for a single-core box) and whose concept family is chosen
/// to match the dataset's published difficulty profile.
class BenchmarkRegistry {
 public:
  BenchmarkRegistry();

  /// The 77 evaluation datasets, in Table 4 order.
  const std::vector<DatasetSpec>& eval_specs() const { return eval_specs_; }

  /// Lookup by dataset name.
  Result<DatasetSpec> Find(const std::string& name) const;

  /// The datasets AL's evaluation used (Figure 6 subset; Table 4 rows
  /// marked with a dagger).
  std::vector<DatasetSpec> AlSubset() const;

  /// The "most trivial" datasets from the Table 3 ablation: the 5 AutoML-
  /// benchmark datasets where every system scores > 0.9.
  std::vector<DatasetSpec> TrivialSubset() const;

  /// Synthetic stand-in for the mined training corpus: ~104 datasets
  /// covering every (family, domain, task) combination seen in evaluation
  /// (the paper: "2,046 notebooks for 104 datasets").
  std::vector<DatasetSpec> TrainingSpecs() const;

  /// 38 Kaggle-style datasets grouped by domain, for the Figure 10
  /// embedding t-SNE study.
  std::vector<DatasetSpec> Kaggle38Specs() const;

 private:
  std::vector<DatasetSpec> eval_specs_;
};

}  // namespace kgpip

#endif  // KGPIP_DATA_BENCHMARK_REGISTRY_H_
