#include "data/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace kgpip {

namespace {

/// RFC-4180-style field splitter with quote support.
/// Returns one row of cells; advances *pos past the terminating newline.
Result<std::vector<std::string>> ParseRow(std::string_view text, size_t* pos,
                                          char delim) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  size_t i = *pos;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          cell += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      cell += c;
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == delim) {
      cells.push_back(std::move(cell));
      cell.clear();
      ++i;
      continue;
    }
    if (c == '\n' || c == '\r') {
      // Consume \r\n or lone terminator.
      ++i;
      if (c == '\r' && i < n && text[i] == '\n') ++i;
      break;
    }
    cell += c;
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field near offset " +
                              std::to_string(i));
  }
  cells.push_back(std::move(cell));
  *pos = i;
  return cells;
}

bool IsNa(const std::string& cell, const CsvOptions& options) {
  if (cell.empty()) return true;
  return std::find(options.na_values.begin(), options.na_values.end(),
                   cell) != options.na_values.end();
}

std::string EscapeCell(const std::string& cell, char delim) {
  bool needs_quotes = cell.find(delim) != std::string::npos ||
                      cell.find('"') != std::string::npos ||
                      cell.find('\n') != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Table> ReadCsvText(std::string_view text, const CsvOptions& options) {
  size_t pos = 0;
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> column_cells;

  if (options.has_header) {
    if (pos >= text.size()) {
      return Status::ParseError("empty CSV input");
    }
    KGPIP_ASSIGN_OR_RETURN(header, ParseRow(text, &pos, options.delimiter));
  }

  size_t row_index = 0;
  while (pos < text.size()) {
    // Skip fully blank trailing lines.
    if (text[pos] == '\n' || text[pos] == '\r') {
      ++pos;
      continue;
    }
    KGPIP_ASSIGN_OR_RETURN(std::vector<std::string> cells,
                           ParseRow(text, &pos, options.delimiter));
    if (header.empty()) {
      header.resize(cells.size());
      for (size_t i = 0; i < cells.size(); ++i) {
        header[i] = "col_" + std::to_string(i);
      }
    }
    if (cells.size() != header.size()) {
      return Status::ParseError(
          "row " + std::to_string(row_index) + " has " +
          std::to_string(cells.size()) + " cells, expected " +
          std::to_string(header.size()));
    }
    if (column_cells.empty()) column_cells.resize(header.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      if (IsNa(cells[i], options)) cells[i].clear();
      column_cells[i].push_back(std::move(cells[i]));
    }
    ++row_index;
  }

  Table table;
  if (column_cells.empty()) column_cells.resize(header.size());
  for (size_t i = 0; i < header.size(); ++i) {
    KGPIP_RETURN_IF_ERROR(table.AddColumn(
        Column::Categorical(header[i], std::move(column_cells[i]))));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  KGPIP_ASSIGN_OR_RETURN(Table table, ReadCsvText(buffer.str(), options));
  // Derive a dataset name from the file name.
  std::string name = path;
  size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  table.set_name(name);
  return table;
}

std::string WriteCsvText(const Table& table, char delimiter) {
  std::string out;
  for (size_t i = 0; i < table.num_columns(); ++i) {
    if (i > 0) out += delimiter;
    out += EscapeCell(table.column(i).name(), delimiter);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t i = 0; i < table.num_columns(); ++i) {
      if (i > 0) out += delimiter;
      const Column& c = table.column(i);
      if (c.IsMissing(r)) continue;
      if (c.type() == ColumnType::kNumeric) {
        out += StrFormat("%.10g", c.NumericAt(r));
      } else {
        out += EscapeCell(c.StringAt(r), delimiter);
      }
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out << WriteCsvText(table, delimiter);
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::Ok();
}

}  // namespace kgpip
