#include "data/benchmark_registry.h"

#include <algorithm>

#include "util/logging.h"

namespace kgpip {

namespace {

using CF = ConceptFamily;
using DM = Domain;

/// One Table 4 row plus our synthetic assignment.
struct Row {
  const char* name;
  int64_t rows;
  int cols;
  int num;
  int cat;
  int text;
  int classes;  // 0 = regression
  double size_mb;
  const char* source;
  bool flaml;
  bool al;
  CF family;
  DM domain;
  double noise;
};

// Table 4 of the paper, with (family, domain, noise) chosen so each
// synthetic dataset's difficulty profile matches the published Table 5
// score levels (e.g. numerai28.6 -> noise family, Kaggle text datasets ->
// text family, kr-vs-kp -> easy rules).
const Row kRows[] = {
    {"pc4", 1458, 37, 37, 0, 0, 2, 0.2, "OpenML", false, true, CF::kRules,
     DM::kSensors, 0.12},
    {"MagicTelescope", 19020, 11, 11, 0, 0, 2, 1.5, "OpenML", false, true,
     CF::kInteractions, DM::kPhysics, 0.02},
    {"OVA_Breast", 1545, 10936, 10936, 0, 0, 2, 103.3, "OpenML", false, true,
     CF::kSparse, DM::kHealthcare, 0.03},
    {"kropt", 28056, 6, 3, 3, 0, 18, 0.5, "OpenML", false, true, CF::kRules,
     DM::kGames, 0.08},
    {"sick", 3772, 29, 7, 22, 0, 2, 0.3, "OpenML", false, true, CF::kRules,
     DM::kHealthcare, 0.08},
    {"splice", 3190, 61, 0, 61, 0, 3, 0.4, "OpenML", false, true, CF::kRules,
     DM::kHealthcare, 0.03},
    {"mnist_784", 70000, 784, 784, 0, 0, 10, 122.0, "OpenML", false, true,
     CF::kClusters, DM::kVision, 0.03},
    {"quake", 2178, 3, 3, 0, 0, 2, 0.0, "OpenML", false, true, CF::kNoise,
     DM::kPhysics, 0.35},
    {"fri_c1_1000_25", 1000, 25, 25, 0, 0, 2, 0.2, "OpenML", false, true,
     CF::kInteractions, DM::kGeneric, 0.06},
    {"breast_cancer_wisconsin", 569, 30, 30, 0, 0, 2, 0.1, "PMLB", false,
     true, CF::kLinear, DM::kHealthcare, 0.01},
    {"car_evaluation", 1728, 21, 21, 0, 0, 4, 0.1, "PMLB", false, true,
     CF::kRules, DM::kSales, 0.01},
    {"detecting-insults-in-social-commentary", 3947, 2, 0, 1, 1, 2, 0.8,
     "Kaggle", false, true, CF::kText, DM::kReviews, 0.15},
    {"glass", 205, 9, 9, 0, 0, 5, 0.0, "PMLB", false, true, CF::kClusters,
     DM::kSensors, 0.25},
    {"Hill_Valley_with_noise", 1212, 100, 100, 0, 0, 2, 0.8, "PMLB", false,
     true, CF::kInteractions, DM::kSensors, 0.10},
    {"Hill_Valley_without_noise", 1212, 100, 100, 0, 0, 2, 1.5, "PMLB",
     false, true, CF::kInteractions, DM::kSensors, 0.02},
    {"ionosphere", 351, 34, 34, 0, 0, 2, 0.1, "PMLB", false, true,
     CF::kClusters, DM::kPhysics, 0.04},
    {"sentiment-analysis-on-movie-reviews", 156060, 3, 2, 0, 1, 5, 8.1,
     "Kaggle", false, true, CF::kText, DM::kReviews, 0.30},
    {"spambase", 4601, 57, 57, 0, 0, 2, 1.1, "PMLB", false, true,
     CF::kLinear, DM::kWeb, 0.02},
    {"spooky-author-identification", 19579, 2, 0, 1, 1, 3, 3.1, "Kaggle",
     false, true, CF::kText, DM::kReviews, 0.15},
    {"titanic", 891, 11, 6, 4, 1, 2, 0.1, "Kaggle", false, true, CF::kRules,
     DM::kGeneric, 0.10},
    {"wine_quality_red", 1599, 11, 11, 0, 0, 6, 0.1, "PMLB", false, true,
     CF::kRules, DM::kSales, 0.40},
    {"wine_quality_white", 4898, 11, 11, 0, 0, 7, 0.3, "PMLB", false, true,
     CF::kRules, DM::kSales, 0.42},
    {"housing-prices", 1460, 80, 37, 43, 0, 0, 0.4, "Kaggle", false, true,
     CF::kRules, DM::kSales, 0.10},
    {"mercedes-benz-greener-manufacturing", 4209, 377, 369, 8, 0, 0, 3.1,
     "Kaggle", false, true, CF::kSparse, DM::kSensors, 0.25},
    {"adult", 48842, 14, 6, 8, 0, 2, 5.7, "AutoML", true, true, CF::kRules,
     DM::kFinance, 0.10},
    {"airlines", 539383, 7, 4, 3, 0, 2, 18.3, "AutoML", true, false,
     CF::kLinear, DM::kWeb, 0.22},
    {"albert", 425240, 78, 78, 0, 0, 2, 155.4, "AutoML", true, false,
     CF::kInteractions, DM::kGeneric, 0.18},
    {"Amazon_employee_access", 32769, 9, 9, 0, 0, 2, 1.9, "AutoML", true,
     false, CF::kRules, DM::kWeb, 0.15},
    {"APSFailure", 76000, 170, 170, 0, 0, 2, 74.8, "AutoML", true, false,
     CF::kSparse, DM::kSensors, 0.05},
    {"Australian", 690, 14, 14, 0, 0, 2, 0.0, "AutoML", true, false,
     CF::kLinear, DM::kFinance, 0.08},
    {"bank-marketing", 45211, 16, 7, 9, 0, 2, 3.5, "AutoML", true, false,
     CF::kRules, DM::kFinance, 0.13},
    {"blood-transfusion-service-center", 748, 4, 4, 0, 0, 2, 0.0, "AutoML",
     true, false, CF::kLinear, DM::kHealthcare, 0.20},
    {"christine", 5418, 1636, 1636, 0, 0, 2, 31.4, "AutoML", true, false,
     CF::kSparse, DM::kGeneric, 0.15},
    {"credit-g", 1000, 20, 7, 13, 0, 2, 0.1, "AutoML", true, false,
     CF::kLinear, DM::kFinance, 0.15},
    {"guillermo", 20000, 4296, 4296, 0, 0, 2, 424.5, "AutoML", true, false,
     CF::kSparse, DM::kVision, 0.12},
    {"higgs", 98050, 28, 28, 0, 0, 2, 43.3, "AutoML", true, false,
     CF::kInteractions, DM::kPhysics, 0.15},
    {"jasmine", 2984, 144, 144, 0, 0, 2, 1.7, "AutoML", true, false,
     CF::kSparse, DM::kGeneric, 0.10},
    {"kc1", 2109, 21, 21, 0, 0, 2, 0.1, "AutoML", true, false, CF::kRules,
     DM::kSensors, 0.18},
    {"KDDCup09_appetency", 50000, 230, 192, 38, 0, 2, 32.8, "AutoML", true,
     false, CF::kNoise, DM::kWeb, 0.30},
    {"kr-vs-kp", 3196, 36, 0, 36, 0, 2, 0.5, "AutoML", true, false,
     CF::kRules, DM::kGames, 0.00},
    {"MiniBooNE", 130064, 50, 50, 0, 0, 2, 69.4, "AutoML", true, false,
     CF::kInteractions, DM::kPhysics, 0.03},
    {"nomao", 34465, 118, 118, 0, 0, 2, 19.3, "AutoML", true, false,
     CF::kLinear, DM::kWeb, 0.02},
    {"numerai28.6", 96320, 21, 21, 0, 0, 2, 34.9, "AutoML", true, false,
     CF::kNoise, DM::kFinance, 0.45},
    {"phoneme", 5404, 5, 5, 0, 0, 2, 0.3, "AutoML", true, false,
     CF::kClusters, DM::kSensors, 0.05},
    {"riccardo", 20000, 4296, 4296, 0, 0, 2, 414.0, "AutoML", true, false,
     CF::kSparse, DM::kVision, 0.01},
    {"sylvine", 5124, 20, 20, 0, 0, 2, 0.4, "AutoML", true, false,
     CF::kRules, DM::kGeneric, 0.03},
    {"car", 1728, 6, 0, 6, 0, 4, 0.1, "AutoML", true, false, CF::kRules,
     DM::kSales, 0.02},
    {"cnae-9", 1080, 856, 856, 0, 0, 9, 1.8, "AutoML", true, false,
     CF::kSparse, DM::kReviews, 0.03},
    {"connect-4", 67557, 42, 42, 0, 0, 3, 5.5, "AutoML", true, false,
     CF::kRules, DM::kGames, 0.15},
    {"covertype", 581012, 54, 54, 0, 0, 7, 71.7, "AutoML", true, true,
     CF::kRules, DM::kSensors, 0.04},
    {"dilbert", 10000, 2000, 2000, 0, 0, 5, 176.0, "AutoML", true, false,
     CF::kClusters, DM::kVision, 0.01},
    {"dionis", 416188, 60, 60, 0, 0, 355, 110.1, "AutoML", true, false,
     CF::kClusters, DM::kVision, 0.08},
    {"fabert", 8237, 800, 800, 0, 0, 7, 13.0, "AutoML", true, false,
     CF::kSparse, DM::kGeneric, 0.18},
    {"Fashion-MNIST", 70000, 784, 784, 0, 0, 10, 148.0, "AutoML", true,
     false, CF::kClusters, DM::kVision, 0.07},
    {"helena", 65196, 27, 27, 0, 0, 100, 14.6, "AutoML", true, false,
     CF::kNoise, DM::kVision, 0.45},
    {"jannis", 83733, 54, 54, 0, 0, 4, 36.7, "AutoML", true, false,
     CF::kInteractions, DM::kGeneric, 0.35},
    {"jungle_chess_2pcs_raw_endgame_complete", 44819, 6, 6, 0, 0, 3, 0.6,
     "AutoML", true, false, CF::kRules, DM::kGames, 0.08},
    {"mfeat-factors", 2000, 216, 216, 0, 0, 10, 1.4, "AutoML", true, false,
     CF::kClusters, DM::kVision, 0.01},
    {"robert", 10000, 7200, 7200, 0, 0, 10, 268.1, "AutoML", true, false,
     CF::kNoise, DM::kGeneric, 0.35},
    {"segment", 2310, 19, 19, 0, 0, 7, 0.3, "AutoML", true, false,
     CF::kRules, DM::kVision, 0.01},
    {"shuttle", 58000, 9, 9, 0, 0, 7, 1.5, "AutoML", true, false, CF::kRules,
     DM::kPhysics, 0.00},
    {"vehicle", 846, 18, 18, 0, 0, 4, 0.1, "AutoML", true, false,
     CF::kClusters, DM::kVision, 0.10},
    {"volkert", 58310, 180, 180, 0, 0, 10, 65.1, "AutoML", true, false,
     CF::kClusters, DM::kVision, 0.20},
    {"2dplanes", 40768, 10, 10, 0, 0, 0, 2.4, "PMLB", true, false,
     CF::kRules, DM::kGeneric, 0.03},
    {"bng_breastTumor", 116640, 9, 9, 0, 0, 0, 6.0, "PMLB", true, false,
     CF::kNoise, DM::kHealthcare, 0.50},
    {"bng_echomonths", 17496, 9, 9, 0, 0, 0, 2.3, "PMLB", true, false,
     CF::kLinear, DM::kHealthcare, 0.35},
    {"bng_lowbwt", 31104, 9, 9, 0, 0, 0, 2.4, "PMLB", true, false,
     CF::kLinear, DM::kHealthcare, 0.25},
    {"bng_pbc", 1000000, 18, 18, 0, 0, 0, 220.8, "PMLB", true, false,
     CF::kInteractions, DM::kHealthcare, 0.35},
    {"bng_pharynx", 1000000, 10, 10, 0, 0, 0, 68.6, "PMLB", true, false,
     CF::kRules, DM::kHealthcare, 0.30},
    {"bng_pwLinear", 177147, 10, 10, 0, 0, 0, 10.6, "PMLB", true, false,
     CF::kRules, DM::kGeneric, 0.25},
    {"fried", 40768, 10, 10, 0, 0, 0, 8.1, "PMLB", true, false,
     CF::kInteractions, DM::kGeneric, 0.02},
    {"house_16H", 22784, 16, 16, 0, 0, 0, 5.8, "PMLB", true, false,
     CF::kInteractions, DM::kSales, 0.20},
    {"house_8L", 22784, 8, 8, 0, 0, 0, 2.8, "PMLB", true, false, CF::kRules,
     DM::kSales, 0.20},
    {"houses", 20640, 8, 8, 0, 0, 0, 1.8, "PMLB", true, false, CF::kLinear,
     DM::kSales, 0.08},
    {"mv", 40768, 11, 11, 0, 0, 0, 5.9, "PMLB", true, false, CF::kRules,
     DM::kGeneric, 0.00},
    {"poker", 1025010, 10, 10, 0, 0, 0, 23.0, "PMLB", true, false,
     CF::kInteractions, DM::kGames, 0.05},
    {"pol", 15000, 48, 48, 0, 0, 0, 3.0, "PMLB", true, false, CF::kRules,
     DM::kSensors, 0.00},
};

DatasetSpec MakeSpec(const Row& row, int index) {
  DatasetSpec spec;
  spec.name = row.name;
  spec.source = row.source;
  if (row.classes == 0) {
    spec.task = TaskType::kRegression;
  } else if (row.classes == 2) {
    spec.task = TaskType::kBinaryClassification;
  } else {
    spec.task = TaskType::kMultiClassification;
  }
  spec.family = row.family;
  spec.domain = row.domain;
  // Scaled generation shape: clamp rows/features so the full suite runs on
  // one core in minutes; the paper-scale values stay in paper_* fields.
  spec.rows = static_cast<int>(
      std::clamp<int64_t>(row.rows, 240, 420));
  spec.num_numeric = std::clamp(row.num, 0, 16);
  spec.num_categorical = std::clamp(row.cat, 0, 8);
  spec.num_text = std::clamp(row.text, 0, 1);
  spec.num_classes = row.classes == 0 ? 0 : std::min(row.classes, 10);
  // Multi-class needs enough rows per class to learn anything.
  if (spec.num_classes > 6) spec.rows = std::max(spec.rows, 420);
  spec.label_noise = row.noise;
  spec.missing_fraction = 0.02;
  spec.seed = 0x1000 + static_cast<uint64_t>(index);
  spec.paper_rows = row.rows;
  spec.paper_cols = row.cols;
  spec.paper_num = row.num;
  spec.paper_cat = row.cat;
  spec.paper_text = row.text;
  spec.paper_classes = row.classes;
  spec.paper_size_mb = row.size_mb;
  spec.used_by_flaml = row.flaml;
  spec.used_by_al = row.al;
  return spec;
}

}  // namespace

BenchmarkRegistry::BenchmarkRegistry() {
  int index = 0;
  for (const Row& row : kRows) {
    eval_specs_.push_back(MakeSpec(row, index++));
  }
  KGPIP_CHECK(eval_specs_.size() == 77u);
}

Result<DatasetSpec> BenchmarkRegistry::Find(const std::string& name) const {
  for (const DatasetSpec& spec : eval_specs_) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("no benchmark dataset named '" + name + "'");
}

std::vector<DatasetSpec> BenchmarkRegistry::AlSubset() const {
  std::vector<DatasetSpec> out;
  for (const DatasetSpec& spec : eval_specs_) {
    if (spec.used_by_al) out.push_back(spec);
  }
  return out;
}

std::vector<DatasetSpec> BenchmarkRegistry::TrivialSubset() const {
  // Paper §4.5.1: "the most trivial binary and multi-class classification
  // datasets in the AutoML benchmark ... 5 datasets (1 binary and 4
  // multi-class)".
  static const char* kTrivial[] = {"kr-vs-kp", "nomao", "cnae-9",
                                   "mfeat-factors", "segment"};
  std::vector<DatasetSpec> out;
  for (const char* name : kTrivial) {
    auto spec = Find(name);
    KGPIP_CHECK(spec.ok());
    out.push_back(*spec);
  }
  return out;
}

std::vector<DatasetSpec> BenchmarkRegistry::TrainingSpecs() const {
  // Cover every (family, domain, task) combination that appears in the
  // evaluation set with two independent training datasets each. This
  // mirrors the paper's corpus: 104 datasets whose notebooks carry the
  // "what works on data like this" signal.
  struct Combo {
    ConceptFamily family;
    Domain domain;
    TaskType task;
  };
  std::vector<Combo> combos;
  for (const DatasetSpec& spec : eval_specs_) {
    bool seen = false;
    for (const Combo& c : combos) {
      if (c.family == spec.family && c.domain == spec.domain &&
          c.task == spec.task) {
        seen = true;
        break;
      }
    }
    if (!seen) combos.push_back({spec.family, spec.domain, spec.task});
  }
  std::vector<DatasetSpec> out;
  int index = 0;
  for (const Combo& combo : combos) {
    for (int copy = 0; copy < 2; ++copy) {
      DatasetSpec spec;
      spec.name = std::string("train_") + ConceptFamilyName(combo.family) +
                  "_" + DomainName(combo.domain) + "_" +
                  TaskTypeName(combo.task) + "_" + std::to_string(copy);
      spec.source = "Corpus";
      spec.task = combo.task;
      spec.family = combo.family;
      spec.domain = combo.domain;
      spec.rows = 300 + 40 * copy;
      spec.num_numeric = combo.family == ConceptFamily::kSparse ? 14 : 8;
      spec.num_categorical = 2;
      spec.num_text = combo.family == ConceptFamily::kText ? 1 : 0;
      spec.num_classes =
          combo.task == TaskType::kRegression
              ? 0
              : (combo.task == TaskType::kBinaryClassification ? 2 : 5);
      spec.label_noise = 0.05 + 0.03 * copy;
      spec.seed = 0x7000 + static_cast<uint64_t>(index);
      out.push_back(std::move(spec));
      ++index;
    }
  }
  return out;
}

std::vector<DatasetSpec> BenchmarkRegistry::Kaggle38Specs() const {
  // 38 Kaggle-style datasets over distinct application domains; used for
  // the Figure 10 embedding study ("38 Kaggle datasets classified by their
  // domains such as sales, financing, and customer reviews").
  static const struct {
    const char* name;
    Domain domain;
  } kNames[] = {
      {"store-sales-forecast", DM::kSales},
      {"black-friday-purchases", DM::kSales},
      {"retail-basket-analysis", DM::kSales},
      {"walmart-weekly-sales", DM::kSales},
      {"grocery-demand", DM::kSales},
      {"credit-default-risk", DM::kFinance},
      {"loan-approval-prediction", DM::kFinance},
      {"fraud-detection-transactions", DM::kFinance},
      {"stock-volatility", DM::kFinance},
      {"insurance-claims", DM::kFinance},
      {"heart-disease-uci", DM::kHealthcare},
      {"diabetes-readmission", DM::kHealthcare},
      {"stroke-prediction", DM::kHealthcare},
      {"medical-cost-personal", DM::kHealthcare},
      {"covid-symptoms", DM::kHealthcare},
      {"imdb-movie-reviews", DM::kReviews},
      {"yelp-ratings", DM::kReviews},
      {"amazon-product-reviews", DM::kReviews},
      {"tripadvisor-hotels", DM::kReviews},
      {"app-store-feedback", DM::kReviews},
      {"predictive-maintenance", DM::kSensors},
      {"turbofan-degradation", DM::kSensors},
      {"smart-building-energy", DM::kSensors},
      {"air-quality-monitoring", DM::kSensors},
      {"chess-endgames", DM::kGames},
      {"dota2-match-outcomes", DM::kGames},
      {"poker-hands", DM::kGames},
      {"speed-chess-blunders", DM::kGames},
      {"digit-recognizer", DM::kVision},
      {"facial-keypoints", DM::kVision},
      {"plant-seedlings", DM::kVision},
      {"street-view-numbers", DM::kVision},
      {"higgs-boson-challenge", DM::kPhysics},
      {"particle-identification", DM::kPhysics},
      {"cosmic-ray-showers", DM::kPhysics},
      {"web-traffic-forecast", DM::kWeb},
      {"click-through-rate", DM::kWeb},
      {"search-relevance", DM::kWeb},
  };
  std::vector<DatasetSpec> out;
  static const ConceptFamily kFamilies[] = {
      ConceptFamily::kLinear, ConceptFamily::kRules,
      ConceptFamily::kInteractions, ConceptFamily::kClusters};
  int index = 0;
  for (const auto& entry : kNames) {
    DatasetSpec spec;
    spec.name = entry.name;
    spec.source = "Kaggle";
    spec.task = TaskType::kBinaryClassification;
    spec.domain = entry.domain;
    spec.family = kFamilies[index % 4];
    spec.rows = 260;
    spec.num_numeric = 8;
    spec.num_categorical = 2;
    spec.num_text = entry.domain == DM::kReviews ? 1 : 0;
    spec.num_classes = 2;
    spec.label_noise = 0.1;
    spec.seed = 0x9000 + static_cast<uint64_t>(index);
    out.push_back(std::move(spec));
    ++index;
  }
  KGPIP_CHECK(out.size() == 38u);
  return out;
}

}  // namespace kgpip
