#ifndef KGPIP_DATA_TABLE_H_
#define KGPIP_DATA_TABLE_H_

#include <optional>
#include <string>
#include <vector>

#include "data/column.h"
#include "util/status.h"

namespace kgpip {

/// Supervised task types; detected automatically from the target column
/// distribution when not declared (paper §3.6 step 1).
enum class TaskType { kBinaryClassification, kMultiClassification,
                      kRegression };

const char* TaskTypeName(TaskType task);
bool IsClassification(TaskType task);

/// An in-memory columnar table: the dataset abstraction every subsystem
/// (embedding, AutoML, benchmarks) consumes.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  size_t num_columns() const { return columns_.size(); }

  /// Appends a column; all columns must share the same length.
  Status AddColumn(Column column);

  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of a column by name, or nullopt.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// Name of the supervised target column (empty if unset).
  const std::string& target_name() const { return target_name_; }
  void set_target_name(std::string name) { target_name_ = std::move(name); }

  /// Returns the target column. Fails if target_name is unset/missing.
  Result<const Column*> TargetColumn() const;

  /// Copies the rows in `indices` (feature + target columns alike).
  Table TakeRows(const std::vector<size_t>& indices) const;

  /// Returns a table with only the feature columns (target dropped).
  Table DropTarget() const;

  /// Column type counts, used for meta-features and Table 4.
  size_t CountType(ColumnType type) const;

 private:
  std::string name_;
  std::string target_name_;
  std::vector<Column> columns_;
};

/// Deterministic train/test split by fraction; shuffles with `seed`.
struct TrainTestSplit {
  Table train;
  Table test;
};
TrainTestSplit SplitTable(const Table& table, double test_fraction,
                          uint64_t seed);

/// K-fold index assignment (fold id per row), shuffled with `seed`.
std::vector<int> KFoldAssignment(size_t num_rows, int k, uint64_t seed);

}  // namespace kgpip

#endif  // KGPIP_DATA_TABLE_H_
