#ifndef KGPIP_DATA_SYNTHETIC_H_
#define KGPIP_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "data/table.h"

namespace kgpip {

/// Generative concept family of a synthetic dataset. The family decides
/// which learner class genuinely fits the data, which is the property the
/// whole evaluation depends on: the paper's corpus of top-scoring Kaggle
/// pipelines carries the signal "datasets like this are solved by learners
/// like that", and our families make that signal real and measurable.
enum class ConceptFamily {
  kLinear,        // linearly separable in the latent features
  kRules,         // axis-aligned decision list; tree-friendly
  kInteractions,  // multiplicative feature interactions; boosting-friendly
  kSparse,        // many irrelevant columns, few informative linear ones
  kClusters,      // label = nearest latent cluster; kNN/NB-friendly
  kText,          // label carried by keywords in a text column
  kNoise,         // barely any signal (e.g. numerai-like)
};

const char* ConceptFamilyName(ConceptFamily family);

/// Application domain. Drives column naming and value scales, so that
/// content-based dataset embeddings (paper §3.2, Figure 10) can cluster
/// datasets by domain without any hand-crafted meta-features.
enum class Domain {
  kSales,
  kFinance,
  kHealthcare,
  kReviews,
  kSensors,
  kGames,
  kVision,
  kPhysics,
  kWeb,
  kGeneric,
};

const char* DomainName(Domain domain);

/// Full recipe for one synthetic dataset.
struct DatasetSpec {
  std::string name;
  std::string source;  // "AutoML" | "PMLB" | "OpenML" | "Kaggle"
  TaskType task = TaskType::kBinaryClassification;
  ConceptFamily family = ConceptFamily::kLinear;
  Domain domain = Domain::kGeneric;

  // Generation-scale shape (already scaled down from the paper's sizes).
  int rows = 400;
  int num_numeric = 8;
  int num_categorical = 0;
  int num_text = 0;
  int num_classes = 2;  // ignored for regression
  double label_noise = 0.05;
  double missing_fraction = 0.02;
  uint64_t seed = 1;

  // Paper-reported statistics, kept verbatim for Tables 1 and 4.
  int64_t paper_rows = 0;
  int paper_cols = 0;
  int paper_num = 0;
  int paper_cat = 0;
  int paper_text = 0;
  int paper_classes = 0;
  double paper_size_mb = 0.0;
  bool used_by_flaml = false;
  bool used_by_al = false;
};

/// Generates the dataset described by `spec` (features + target column
/// named "target", with the table's target_name set).
Table GenerateDataset(const DatasetSpec& spec);

/// The learners that genuinely fit each family, in descending affinity.
/// This is ground truth about the generators — exposed so tests can verify
/// that the mined-corpus signal matches reality, and so the corpus
/// generator can bias "top Kaggle solutions" the way real leaderboards do.
std::vector<std::string> FamilyAffineLearners(ConceptFamily family,
                                              TaskType task);

}  // namespace kgpip

#endif  // KGPIP_DATA_SYNTHETIC_H_
