#ifndef KGPIP_DATA_CSV_H_
#define KGPIP_DATA_CSV_H_

#include <string>
#include <string_view>

#include "data/table.h"
#include "util/status.h"

namespace kgpip {

/// Options for CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Cell values treated as missing in addition to empty cells.
  std::vector<std::string> na_values = {"NA", "N/A", "nan", "NaN", "null",
                                        "?"};
};

/// Parses CSV text into a Table. All columns come back as strings; callers
/// run `InferColumnTypes` (type_inference.h) to get typed columns, which is
/// the same two-phase flow pandas-style readers use.
Result<Table> ReadCsvText(std::string_view text, const CsvOptions& options);

/// Reads a CSV file from disk.
Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options);

/// Serializes a table to CSV text (with header).
std::string WriteCsvText(const Table& table, char delimiter = ',');

/// Writes a table to disk as CSV.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace kgpip

#endif  // KGPIP_DATA_CSV_H_
