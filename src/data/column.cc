#include "data/column.h"

#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace kgpip {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kNumeric:
      return "numeric";
    case ColumnType::kCategorical:
      return "categorical";
    case ColumnType::kText:
      return "text";
  }
  return "?";
}

Column Column::Numeric(std::string name, std::vector<double> values) {
  Column c;
  c.name_ = std::move(name);
  c.type_ = ColumnType::kNumeric;
  c.missing_.resize(values.size(), 0);
  for (size_t i = 0; i < values.size(); ++i) {
    if (std::isnan(values[i])) c.missing_[i] = 1;
  }
  c.numeric_ = std::move(values);
  return c;
}

Column Column::Categorical(std::string name,
                           std::vector<std::string> values) {
  Column c;
  c.name_ = std::move(name);
  c.type_ = ColumnType::kCategorical;
  c.missing_.resize(values.size(), 0);
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].empty()) c.missing_[i] = 1;
  }
  c.strings_ = std::move(values);
  return c;
}

Column Column::Text(std::string name, std::vector<std::string> values) {
  Column c = Categorical(std::move(name), std::move(values));
  c.type_ = ColumnType::kText;
  return c;
}

size_t Column::MissingCount() const {
  size_t n = 0;
  for (uint8_t m : missing_) n += m;
  return n;
}

size_t Column::DistinctCount() const {
  if (type_ == ColumnType::kNumeric) {
    std::unordered_set<double> seen;
    for (size_t i = 0; i < numeric_.size(); ++i) {
      if (!missing_[i]) seen.insert(numeric_[i]);
    }
    return seen.size();
  }
  std::unordered_set<std::string> seen;
  for (size_t i = 0; i < strings_.size(); ++i) {
    if (!missing_[i]) seen.insert(strings_[i]);
  }
  return seen.size();
}

Column Column::Take(const std::vector<size_t>& indices) const {
  Column out;
  out.name_ = name_;
  out.type_ = type_;
  out.missing_.reserve(indices.size());
  if (type_ == ColumnType::kNumeric) {
    out.numeric_.reserve(indices.size());
    for (size_t idx : indices) {
      KGPIP_CHECK(idx < numeric_.size());
      out.numeric_.push_back(numeric_[idx]);
      out.missing_.push_back(missing_[idx]);
    }
  } else {
    out.strings_.reserve(indices.size());
    for (size_t idx : indices) {
      KGPIP_CHECK(idx < strings_.size());
      out.strings_.push_back(strings_[idx]);
      out.missing_.push_back(missing_[idx]);
    }
  }
  return out;
}

}  // namespace kgpip
