#ifndef KGPIP_DATA_TYPE_INFERENCE_H_
#define KGPIP_DATA_TYPE_INFERENCE_H_

#include "data/table.h"
#include "util/status.h"

namespace kgpip {

/// Heuristics for inferring column types from string data and for
/// detecting the supervised task from the target column — the paper's
/// §3.6 preprocessing steps 1 ("detecting task type ... automatically
/// based on the distribution of the target column") and 2 ("automatically
/// inferring accurate data types of columns").
struct TypeInferenceOptions {
  /// Minimum fraction of non-missing cells that must parse as numbers for
  /// a column to become numeric.
  double numeric_threshold = 0.95;
  /// A string column whose distinct/total ratio is below this (or whose
  /// distinct count is tiny) is categorical rather than text.
  double categorical_distinct_ratio = 0.3;
  size_t categorical_max_distinct = 64;
  /// Mean token count at or above which a string column is text.
  double text_min_mean_tokens = 4.0;
};

/// Converts string columns in-place into numeric / categorical / text
/// columns according to the heuristics above.
Status InferColumnTypes(Table* table,
                        const TypeInferenceOptions& options = {});

/// Decides the task from the target column: a non-numeric target or a
/// numeric target with few distinct integer values is classification.
Result<TaskType> DetectTask(const Table& table);

}  // namespace kgpip

#endif  // KGPIP_DATA_TYPE_INFERENCE_H_
