#include "hpo/search_space.h"

#include <algorithm>
#include <cmath>

#include "ml/learner.h"
#include "ml/preprocess.h"

namespace kgpip::hpo {

namespace {

ParamSpec FloatParam(const std::string& name, double lo, double hi,
                     double default_value, bool log_scale = false) {
  ParamSpec spec;
  spec.name = name;
  spec.kind = ParamSpec::Kind::kFloat;
  spec.lo = lo;
  spec.hi = hi;
  spec.log_scale = log_scale;
  spec.default_value = default_value;
  return spec;
}

ParamSpec IntParam(const std::string& name, double lo, double hi,
                   double default_value, bool log_scale = false) {
  ParamSpec spec = FloatParam(name, lo, hi, default_value, log_scale);
  spec.kind = ParamSpec::Kind::kInt;
  return spec;
}

ParamSpec ChoiceParam(const std::string& name,
                      std::vector<std::string> choices,
                      std::string default_choice) {
  ParamSpec spec;
  spec.name = name;
  spec.kind = ParamSpec::Kind::kChoice;
  spec.choices = std::move(choices);
  spec.default_choice = std::move(default_choice);
  return spec;
}

double SampleNumeric(const ParamSpec& spec, double unit) {
  if (spec.log_scale) {
    double lo = std::log(std::max(spec.lo, 1e-12));
    double hi = std::log(std::max(spec.hi, 1e-12));
    return std::exp(lo + unit * (hi - lo));
  }
  return spec.lo + unit * (spec.hi - spec.lo);
}

}  // namespace

ml::HyperParams SearchSpace::DefaultConfig() const {
  ml::HyperParams config;
  for (const ParamSpec& spec : params_) {
    if (spec.kind == ParamSpec::Kind::kChoice) {
      config.SetStr(spec.name, spec.default_choice);
    } else {
      config.SetNum(spec.name, spec.kind == ParamSpec::Kind::kInt
                                   ? std::round(spec.default_value)
                                   : spec.default_value);
    }
  }
  return config;
}

ml::HyperParams SearchSpace::Sample(Rng* rng) const {
  ml::HyperParams config;
  for (const ParamSpec& spec : params_) {
    if (spec.kind == ParamSpec::Kind::kChoice) {
      config.SetStr(spec.name,
                    spec.choices[rng->UniformInt(spec.choices.size())]);
    } else {
      double v = SampleNumeric(spec, rng->Uniform());
      config.SetNum(spec.name,
                    spec.kind == ParamSpec::Kind::kInt ? std::round(v) : v);
    }
  }
  return config;
}

ml::HyperParams SearchSpace::Perturb(const ml::HyperParams& base,
                                     double step, Rng* rng) const {
  // FLAML's CFO moves along a random direction over every numeric
  // dimension at once (not coordinate descent); categorical dimensions
  // flip with a small probability.
  ml::HyperParams config = base;
  if (params_.empty()) return config;
  for (const ParamSpec& spec : params_) {
    if (spec.kind == ParamSpec::Kind::kChoice) {
      if (rng->Bernoulli(0.2)) {
        config.SetStr(spec.name,
                      spec.choices[rng->UniformInt(spec.choices.size())]);
      }
      continue;
    }
    double current = base.GetNum(spec.name, spec.default_value);
    double next;
    if (spec.log_scale) {
      double factor = std::exp(rng->Normal() * step * 2.0);
      next = current * factor;
    } else {
      next = current + rng->Normal() * step * (spec.hi - spec.lo);
    }
    next = std::clamp(next, spec.lo, spec.hi);
    config.SetNum(spec.name,
                  spec.kind == ParamSpec::Kind::kInt ? std::round(next)
                                                     : next);
  }
  return config;
}

Json SearchSpace::ToJson() const {
  Json out = Json::Array();
  for (const ParamSpec& spec : params_) {
    Json entry = Json::Object();
    entry.Set("name", Json(spec.name));
    switch (spec.kind) {
      case ParamSpec::Kind::kFloat:
        entry.Set("type", Json("float"));
        break;
      case ParamSpec::Kind::kInt:
        entry.Set("type", Json("int"));
        break;
      case ParamSpec::Kind::kChoice:
        entry.Set("type", Json("choice"));
        break;
    }
    if (spec.kind == ParamSpec::Kind::kChoice) {
      Json choices = Json::Array();
      for (const std::string& c : spec.choices) choices.Append(c);
      entry.Set("choices", std::move(choices));
      entry.Set("default", Json(spec.default_choice));
    } else {
      entry.Set("low", Json(spec.lo));
      entry.Set("high", Json(spec.hi));
      entry.Set("log", Json(spec.log_scale));
      entry.Set("default", Json(spec.default_value));
    }
    out.Append(std::move(entry));
  }
  return out;
}

Result<SearchSpace> SearchSpace::FromJson(const Json& json) {
  if (!json.is_array()) {
    return Status::ParseError("search space JSON must be an array");
  }
  SearchSpace space;
  for (size_t i = 0; i < json.size(); ++i) {
    const Json& entry = json.at(i);
    ParamSpec spec;
    spec.name = entry.Get("name").AsString();
    if (spec.name.empty()) {
      return Status::ParseError("search space entry without a name");
    }
    const std::string& type = entry.Get("type").AsString();
    if (type == "choice") {
      spec.kind = ParamSpec::Kind::kChoice;
      const Json& choices = entry.Get("choices");
      for (size_t c = 0; c < choices.size(); ++c) {
        spec.choices.push_back(choices.at(c).AsString());
      }
      if (spec.choices.empty()) {
        return Status::ParseError("choice parameter '" + spec.name +
                                  "' without choices");
      }
      spec.default_choice = entry.Get("default").AsString();
    } else {
      spec.kind = type == "int" ? ParamSpec::Kind::kInt
                                : ParamSpec::Kind::kFloat;
      spec.lo = entry.Get("low").AsDouble();
      spec.hi = entry.Get("high").AsDouble();
      spec.log_scale = entry.Get("log").AsBool();
      spec.default_value = entry.Get("default").AsDouble();
    }
    space.Add(std::move(spec));
  }
  return space;
}

SearchSpace SpaceForLearner(const std::string& learner) {
  SearchSpace space;
  // Defaults are deliberately conservative (like real library defaults
  // on hard data): reaching the strong region takes tuning budget, which
  // is exactly the resource learner selection is supposed to conserve.
  if (learner == "logistic_regression" || learner == "linear_svm" ||
      learner == "sgd") {
    space.Add(FloatParam("alpha", 1e-5, 1.0, 3e-2, /*log=*/true));
    space.Add(FloatParam("lr", 0.01, 0.5, 0.06, /*log=*/true));
    space.Add(IntParam("epochs", 40, 200, 60));
    if (learner == "logistic_regression") {
      space.Add(ChoiceParam("penalty", {"l1", "l2"}, "l2"));
    }
  } else if (learner == "linear_regression") {
    space.Add(FloatParam("lr", 0.01, 0.5, 0.06, true));
    space.Add(IntParam("epochs", 40, 200, 60));
  } else if (learner == "ridge" || learner == "lasso") {
    space.Add(FloatParam("alpha", 1e-5, 1.0, 3e-2, true));
    space.Add(FloatParam("lr", 0.01, 0.5, 0.06, true));
    space.Add(IntParam("epochs", 40, 200, 60));
  } else if (learner == "gaussian_nb") {
    space.Add(FloatParam("var_smoothing", 1e-10, 1e-2, 1e-9, true));
  } else if (learner == "knn") {
    space.Add(IntParam("n_neighbors", 1, 25, 15));
    space.Add(ChoiceParam("weights", {"uniform", "distance"}, "uniform"));
  } else if (learner == "decision_tree") {
    space.Add(IntParam("max_depth", 2, 18, 4));
    space.Add(IntParam("min_samples_leaf", 1, 16, 8));
  } else if (learner == "random_forest" || learner == "extra_trees") {
    space.Add(IntParam("n_estimators", 8, 60, 10));
    space.Add(IntParam("max_depth", 4, 18, 6));
    space.Add(FloatParam("max_features", 0.2, 1.0, 0.35));
    space.Add(IntParam("min_samples_leaf", 1, 8, 4));
  } else if (learner == "gradient_boosting" || learner == "xgboost" ||
             learner == "lgbm") {
    space.Add(IntParam("n_estimators", 10, 80, 14));
    space.Add(FloatParam("learning_rate", 0.02, 0.5, 0.06, true));
    space.Add(IntParam("max_depth", 2, 8, 3));
    space.Add(FloatParam("subsample", 0.5, 1.0, 1.0));
    space.Add(FloatParam("colsample", 0.4, 1.0, 0.9));
    space.Add(FloatParam("lambda", 0.1, 10.0, 1.0, true));
  }
  return space;
}

SearchSpace SpaceForSkeleton(const std::string& learner,
                             const std::vector<std::string>& preprocessors) {
  SearchSpace space = SpaceForLearner(learner);
  for (const std::string& p : preprocessors) {
    if (p == "select_k_best") {
      space.Add(IntParam("k", 2, 30, 10));
    } else if (p == "pca") {
      space.Add(IntParam("n_components", 2, 16, 8));
    } else if (p == "variance_threshold") {
      space.Add(FloatParam("threshold", 1e-9, 1e-2, 1e-8, true));
    }
  }
  return space;
}

Json IntegrationDocument() {
  Json doc = Json::Object();
  Json estimators = Json::Object();
  for (const ml::LearnerInfo& info : ml::LearnerRegistry()) {
    Json entry = Json::Object();
    entry.Set("classification", Json(info.supports_classification));
    entry.Set("regression", Json(info.supports_regression));
    entry.Set("relative_cost", Json(info.relative_cost));
    entry.Set("space", SpaceForLearner(info.name).ToJson());
    estimators.Set(info.name, std::move(entry));
  }
  doc.Set("estimators", std::move(estimators));
  Json preprocessors = Json::Array();
  for (const std::string& name : ml::TransformerRegistry()) {
    preprocessors.Append(name);
  }
  doc.Set("preprocessors", std::move(preprocessors));
  return doc;
}

}  // namespace kgpip::hpo
