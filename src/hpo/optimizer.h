#ifndef KGPIP_HPO_OPTIMIZER_H_
#define KGPIP_HPO_OPTIMIZER_H_

#include <memory>
#include <string>

#include "hpo/evaluator.h"
#include "hpo/search_space.h"
#include "hpo/trial_guard.h"

namespace kgpip::hpo {

/// Outcome of optimizing one skeleton.
struct OptimizeResult {
  ml::PipelineSpec best_spec;
  double best_score = -1e18;
  int trials = 0;
  int failures = 0;
  /// True when the skeleton's circuit breaker tripped and its remaining
  /// budget was released for redistribution.
  bool abandoned = false;
};

/// Stateful cost-frugal local search (FLAML's CFO flavour): start from
/// the default configuration, propose one-dimension perturbations, expand
/// the step on success and shrink it on failure, with occasional random
/// restarts. Non-finite scores are failure signals: they shrink the step
/// (FLAML treats failed trials as evidence to search more locally) and
/// never enter best/incumbent comparisons.
class CfoSearch {
 public:
  CfoSearch(SearchSpace space, uint64_t seed);

  ml::HyperParams Propose();
  void Tell(const ml::HyperParams& config, double score);

  double best_score() const { return best_score_; }
  const ml::HyperParams& best_config() const { return best_config_; }
  /// False until a finite-score trial has been told.
  bool has_best() const { return has_best_; }

 private:
  SearchSpace space_;
  Rng rng_;
  double step_ = 0.3;
  bool first_ = true;
  bool has_best_ = false;
  ml::HyperParams incumbent_;
  double incumbent_score_ = -1e18;
  ml::HyperParams best_config_;
  double best_score_ = -1e18;
};

/// Stateful random search with a default-config warm start (the
/// Auto-Sklearn-style optimizer's inner loop). NaN-score safe like
/// CfoSearch.
class RandomSearch {
 public:
  RandomSearch(SearchSpace space, uint64_t seed);

  ml::HyperParams Propose();
  void Tell(const ml::HyperParams& config, double score);

  double best_score() const { return best_score_; }
  const ml::HyperParams& best_config() const { return best_config_; }
  bool has_best() const { return has_best_; }

 private:
  SearchSpace space_;
  Rng rng_;
  bool first_ = true;
  bool has_best_ = false;
  ml::HyperParams best_config_;
  double best_score_ = -1e18;
};

/// A skeleton-level hyper-parameter optimizer (the component KGpip
/// borrows from FLAML / Auto-Sklearn).
class HpOptimizer {
 public:
  virtual ~HpOptimizer() = default;

  /// Spends `budget` tuning `skeleton`'s hyper-parameters through
  /// `guard` (which owns retries, quarantine, and the per-skeleton
  /// circuit breaker). Stops early — with `abandoned` set — when the
  /// guard opens the skeleton's circuit.
  virtual OptimizeResult OptimizeSkeleton(const ml::PipelineSpec& skeleton,
                                          TrialGuard* guard,
                                          Budget* budget,
                                          uint64_t seed) const = 0;
  virtual std::string name() const = 0;
};

/// "flaml" (CFO) or "autosklearn" (random + default warm start).
Result<std::unique_ptr<HpOptimizer>> CreateOptimizer(
    const std::string& name);

}  // namespace kgpip::hpo

#endif  // KGPIP_HPO_OPTIMIZER_H_
