#ifndef KGPIP_HPO_OPTIMIZER_H_
#define KGPIP_HPO_OPTIMIZER_H_

#include <memory>
#include <string>

#include "hpo/evaluator.h"
#include "hpo/search_space.h"

namespace kgpip::hpo {

/// Outcome of optimizing one skeleton.
struct OptimizeResult {
  ml::PipelineSpec best_spec;
  double best_score = -1e18;
  int trials = 0;
};

/// Stateful cost-frugal local search (FLAML's CFO flavour): start from
/// the default configuration, propose one-dimension perturbations, expand
/// the step on success and shrink it on failure, with occasional random
/// restarts.
class CfoSearch {
 public:
  CfoSearch(SearchSpace space, uint64_t seed);

  ml::HyperParams Propose();
  void Tell(const ml::HyperParams& config, double score);

  double best_score() const { return best_score_; }
  const ml::HyperParams& best_config() const { return best_config_; }

 private:
  SearchSpace space_;
  Rng rng_;
  double step_ = 0.3;
  bool first_ = true;
  ml::HyperParams incumbent_;
  double incumbent_score_ = -1e18;
  ml::HyperParams best_config_;
  double best_score_ = -1e18;
};

/// Stateful random search with a default-config warm start (the
/// Auto-Sklearn-style optimizer's inner loop).
class RandomSearch {
 public:
  RandomSearch(SearchSpace space, uint64_t seed);

  ml::HyperParams Propose();
  void Tell(const ml::HyperParams& config, double score);

  double best_score() const { return best_score_; }
  const ml::HyperParams& best_config() const { return best_config_; }

 private:
  SearchSpace space_;
  Rng rng_;
  bool first_ = true;
  ml::HyperParams best_config_;
  double best_score_ = -1e18;
};

/// A skeleton-level hyper-parameter optimizer (the component KGpip
/// borrows from FLAML / Auto-Sklearn).
class HpOptimizer {
 public:
  virtual ~HpOptimizer() = default;

  /// Spends `budget` tuning `skeleton`'s hyper-parameters on `evaluator`.
  virtual OptimizeResult OptimizeSkeleton(const ml::PipelineSpec& skeleton,
                                          TrialEvaluator* evaluator,
                                          Budget* budget,
                                          uint64_t seed) const = 0;
  virtual std::string name() const = 0;
};

/// "flaml" (CFO) or "autosklearn" (random + default warm start).
Result<std::unique_ptr<HpOptimizer>> CreateOptimizer(
    const std::string& name);

}  // namespace kgpip::hpo

#endif  // KGPIP_HPO_OPTIMIZER_H_
