#include "hpo/evaluator.h"

#include <algorithm>

namespace kgpip::hpo {

Result<TrialEvaluator> TrialEvaluator::Create(const Table& train,
                                              TaskType task,
                                              double holdout_fraction,
                                              uint64_t seed) {
  TrialEvaluator evaluator;
  evaluator.task_ = task;
  TrainTestSplit split = SplitTable(train, holdout_fraction, seed);
  ml::Featurizer featurizer;
  KGPIP_RETURN_IF_ERROR(featurizer.Fit(split.train, task));
  KGPIP_ASSIGN_OR_RETURN(evaluator.fit_data_,
                         featurizer.Transform(split.train));
  KGPIP_ASSIGN_OR_RETURN(evaluator.holdout_data_,
                         featurizer.Transform(split.test));
  return evaluator;
}

Result<double> TrialEvaluator::Evaluate(const ml::PipelineSpec& spec,
                                        uint64_t seed) const {
  KGPIP_ASSIGN_OR_RETURN(
      ml::Pipeline pipeline,
      ml::Pipeline::FitOnData(spec, fit_data_, task_, seed));
  return pipeline.ScoreData(holdout_data_);
}

}  // namespace kgpip::hpo
