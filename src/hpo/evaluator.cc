#include "hpo/evaluator.h"

#include <algorithm>
#include <optional>

#include "util/thread_pool.h"

namespace kgpip::hpo {

Result<TrialEvaluator> TrialEvaluator::Create(const Table& train,
                                              TaskType task,
                                              double holdout_fraction,
                                              uint64_t seed) {
  TrialEvaluator evaluator;
  evaluator.task_ = task;
  TrainTestSplit split = SplitTable(train, holdout_fraction, seed);
  ml::Featurizer featurizer;
  KGPIP_RETURN_IF_ERROR(featurizer.Fit(split.train, task));
  // The fitted featurizer is read-only from here, so the two transforms
  // (train + holdout) run concurrently on the pool.
  std::optional<Result<ml::LabeledData>> transformed[2];
  const Table* splits[2] = {&split.train, &split.test};
  util::ThreadPool::Global().ParallelFor(2, [&](size_t i) {
    transformed[i] = featurizer.Transform(*splits[i]);
  });
  KGPIP_ASSIGN_OR_RETURN(evaluator.fit_data_, std::move(*transformed[0]));
  KGPIP_ASSIGN_OR_RETURN(evaluator.holdout_data_,
                         std::move(*transformed[1]));
  return evaluator;
}

Result<double> TrialEvaluator::Evaluate(const ml::PipelineSpec& spec,
                                        uint64_t seed) const {
  KGPIP_ASSIGN_OR_RETURN(
      ml::Pipeline pipeline,
      ml::Pipeline::FitOnData(spec, fit_data_, task_, seed));
  return pipeline.ScoreData(holdout_data_);
}

}  // namespace kgpip::hpo
