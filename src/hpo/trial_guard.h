#ifndef KGPIP_HPO_TRIAL_GUARD_H_
#define KGPIP_HPO_TRIAL_GUARD_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "hpo/evaluator.h"
#include "obs/stage_profile.h"
#include "util/json.h"

namespace kgpip::hpo {

/// Why a guarded trial produced no usable score.
enum class TrialFailure {
  kNone = 0,       // trial succeeded
  kError,          // evaluator returned a non-OK status (after retries)
  kNanScore,       // score was NaN/Inf and was quarantined
  kTimeout,        // trial ran past the per-trial deadline
  kCircuitOpen,    // the skeleton's circuit breaker is open; not evaluated
};
const char* TrialFailureName(TrialFailure failure);

/// Outcome of one guarded evaluation.
struct GuardedTrial {
  bool ok() const { return failure == TrialFailure::kNone; }
  double score = -1e18;  // meaningful only when ok()
  TrialFailure failure = TrialFailure::kNone;
  StatusCode code = StatusCode::kOk;  // taxonomy bucket for failures
  int retries = 0;       // transient-failure retries spent on this trial
};

/// Knobs for the guard; the defaults match `KgpipConfig`.
struct TrialGuardOptions {
  /// Retries per trial on transient codes (kInternal/kResourceExhausted).
  int max_retries = 2;
  /// Simulated backoff recorded (not slept) per retry; doubles each
  /// attempt. Keeping it virtual keeps guarded runs deterministic.
  double retry_backoff_seconds = 0.05;
  /// Per-trial wall-clock deadline; 0 disables it. Evaluation is
  /// single-threaded so the check is post-hoc: an overrunning trial's
  /// score is discarded and counted as a timeout.
  double trial_deadline_seconds = 0.0;
  /// Consecutive failures (per group) that open the circuit breaker and
  /// abandon the skeleton; <= 0 disables breaking.
  int circuit_breaker_threshold = 3;
};

/// Consecutive-failure circuit breaker over string-keyed groups (PR 1's
/// per-skeleton breaker, factored out so the serve daemon can reuse the
/// identical policy per tenant). Not thread-safe on its own; TrialGuard
/// runs single-threaded and serve wraps it in its tenant-state mutex.
class CircuitBreaker {
 public:
  /// `threshold` consecutive failures open the circuit; <= 0 disables
  /// breaking entirely.
  explicit CircuitBreaker(int threshold) : threshold_(threshold) {}

  bool Open(const std::string& key) const { return open_.count(key) > 0; }

  /// Records one failure; returns true when this failure tripped the
  /// breaker (the open transition, not merely "is open").
  bool RecordFailure(const std::string& key) {
    if (Open(key)) return false;
    int streak = ++consecutive_[key];
    if (threshold_ > 0 && streak >= threshold_) {
      open_.insert(key);
      return true;
    }
    return false;
  }

  void RecordSuccess(const std::string& key) { consecutive_[key] = 0; }

  /// Half-open probe support: forgets the open state (and the streak) so
  /// the next request through gets one real attempt.
  void Reset(const std::string& key) {
    open_.erase(key);
    consecutive_[key] = 0;
  }

  int threshold() const { return threshold_; }

 private:
  int threshold_;
  std::map<std::string, int> consecutive_;
  std::set<std::string> open_;
};

/// Per-skeleton (or per-learner) slice of a run's failure accounting.
struct SkeletonReport {
  std::string key;  // skeleton spec string or learner name
  int trials = 0;
  int failures = 0;
  int retries = 0;
  int nan_quarantined = 0;
  int timeouts = 0;
  bool abandoned = false;         // circuit breaker tripped
  int redistributed_trials = 0;   // budget released to surviving skeletons
  double best_score = -1e18;
};

/// Structured account of why (and how much) a run degraded, attached to
/// `automl::AutoMlResult`. The failure accounting is wall-clock-free so a
/// fixed seed yields identical counts; `stage_profile` is the one timed
/// exception (clear it before byte-comparing reports across runs).
struct RunReport {
  std::vector<SkeletonReport> skeletons;
  /// Failure taxonomy over terminal (post-retry) trial failures.
  std::map<StatusCode, int> failures_by_code;
  int total_trials = 0;
  int total_failures = 0;
  int total_retries = 0;
  int quarantined_scores = 0;
  int timeouts = 0;
  int circuit_breaker_trips = 0;
  /// Candidates the PipelineLinter rejected before any budget was
  /// allocated to them (they never appear in `skeletons` and consume no
  /// trials), with a per-lint-code breakdown.
  int lint_rejected = 0;
  std::map<std::string, int> lint_rejected_by_code;
  double simulated_backoff_seconds = 0.0;
  /// Degradation ladder flags (see DESIGN.md "Failure semantics").
  bool fallback_portfolio = false;   // skeleton prediction failed
  bool last_resort_pass = false;     // search yielded nothing; defaults run
  bool returned_best_so_far = false; // budget expired before all skeletons
  /// Serving provenance: true when the result was answered from the
  /// daemon's content-hash cache instead of a fresh search, so a cached
  /// answer stays auditable (see DESIGN.md "Serving & multi-tenancy").
  bool cache_hit = false;
  /// Overload degradation rung the daemon served this request at:
  /// 0 = full fit, 1 = cached-skeleton fit (embedding + SimIndex skipped,
  /// reduced HPO budget), 2 = zero-shot top-1 skeleton (no HPO).
  int degradation_level = 0;
  std::string notes;
  /// Where `Kgpip::Fit` spent its wall-clock budget, stage by stage
  /// (predict_skeletons, hpo_search, ...). Empty outside full Fit runs.
  obs::StageProfile stage_profile;

  SkeletonReport* FindOrAdd(const std::string& key);
  const SkeletonReport* Find(const std::string& key) const;

  Json ToJson() const;
  /// One-line human summary for logs and the bench harness.
  std::string Summary() const;
};

/// Wraps a `TrialEvaluator` with the fault-tolerance policy: NaN/Inf
/// score quarantine, per-trial deadline, bounded retry-with-backoff on
/// transient failures, and a per-group circuit breaker. All failure
/// accounting lands in the embedded `RunReport`. Groups are arbitrary
/// strings — KGpip uses the skeleton spec, the host-optimizer baselines
/// use the learner name.
class TrialGuard {
 public:
  TrialGuard(TrialEvaluator* evaluator, TrialGuardOptions options)
      : evaluator_(evaluator),
        options_(options),
        breaker_(options.circuit_breaker_threshold) {}

  /// Evaluates `spec` under the guard. Never propagates an error: every
  /// outcome is a `GuardedTrial`. A trial against an open circuit returns
  /// kCircuitOpen without touching the evaluator (and without counting a
  /// trial).
  GuardedTrial Evaluate(const ml::PipelineSpec& spec, uint64_t seed,
                        const std::string& group);

  /// True once `group` has been abandoned by the circuit breaker.
  bool CircuitOpen(const std::string& group) const {
    return breaker_.Open(group);
  }

  /// Records budget trials an abandoned group released back to the pool.
  void NoteRedistribution(const std::string& group, int trials);

  const TrialEvaluator& evaluator() const { return *evaluator_; }
  const TrialGuardOptions& options() const { return options_; }
  RunReport& report() { return report_; }
  /// Moves the accumulated report out (the guard keeps running state).
  RunReport TakeReport() { return std::move(report_); }

 private:
  TrialEvaluator* evaluator_;
  TrialGuardOptions options_;
  RunReport report_;
  CircuitBreaker breaker_;
};

}  // namespace kgpip::hpo

#endif  // KGPIP_HPO_TRIAL_GUARD_H_
