#ifndef KGPIP_HPO_SEARCH_SPACE_H_
#define KGPIP_HPO_SEARCH_SPACE_H_

#include <string>
#include <vector>

#include "ml/hyperparams.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/status.h"

namespace kgpip::hpo {

/// One tunable dimension of a learner/transformer search space.
struct ParamSpec {
  enum class Kind { kFloat, kInt, kChoice };
  std::string name;
  Kind kind = Kind::kFloat;
  double lo = 0.0;
  double hi = 1.0;
  bool log_scale = false;
  std::vector<std::string> choices;  // kChoice only
  double default_value = 0.0;
  std::string default_choice;
};

/// The search space of one pipeline skeleton (estimator + transformers).
class SearchSpace {
 public:
  SearchSpace() = default;

  void Add(ParamSpec spec) { params_.push_back(std::move(spec)); }
  const std::vector<ParamSpec>& params() const { return params_; }
  bool empty() const { return params_.empty(); }

  /// Default configuration (centre of the space).
  ml::HyperParams DefaultConfig() const;

  /// Uniform random configuration.
  ml::HyperParams Sample(Rng* rng) const;

  /// Local perturbation of `base`: one randomly chosen dimension moves by
  /// `step` (relative for numeric, neighbouring for choices). This is the
  /// move operator of the FLAML-style cost-frugal local search.
  ml::HyperParams Perturb(const ml::HyperParams& base, double step,
                          Rng* rng) const;

  /// JSON document of the space (the integration contract the paper
  /// mentions: "a JSON document of the particular preprocessors and
  /// estimators supported by the hyperparameter optimizer").
  Json ToJson() const;
  static Result<SearchSpace> FromJson(const Json& json);

 private:
  std::vector<ParamSpec> params_;
};

/// Built-in search space for a registry learner name (tuned dimensions
/// match the corresponding sklearn/XGBoost/LightGBM knobs).
SearchSpace SpaceForLearner(const std::string& learner);

/// Extends a learner space with the knobs of the given transformers
/// (e.g. select_k_best.k, pca.n_components).
SearchSpace SpaceForSkeleton(const std::string& learner,
                             const std::vector<std::string>& preprocessors);

/// The full integration document: every supported estimator and
/// preprocessor with its search space.
Json IntegrationDocument();

}  // namespace kgpip::hpo

#endif  // KGPIP_HPO_SEARCH_SPACE_H_
