#ifndef KGPIP_HPO_EVALUATOR_H_
#define KGPIP_HPO_EVALUATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "data/table.h"
#include "ml/featurizer.h"
#include "ml/pipeline.h"
#include "util/stopwatch.h"

namespace kgpip::hpo {

/// Optimization budget: a trial cap (deterministic accounting used by the
/// benchmarks) plus an optional wall-clock cap. The paper's time budgets
/// (1 h / 30 min) map to trial counts here, scaled to a single core.
class Budget {
 public:
  Budget(int max_trials, double max_seconds)
      : max_trials_(max_trials), deadline_(max_seconds) {}

  /// Consumes one trial; false if the budget is already exhausted.
  bool ConsumeTrial() {
    if (Exhausted()) return false;
    ++used_trials_;
    return true;
  }
  bool Exhausted() const {
    return used_trials_ >= max_trials_ || deadline_.Expired();
  }
  int used_trials() const { return used_trials_; }
  int max_trials() const { return max_trials_; }
  int remaining_trials() const {
    return std::max(0, max_trials_ - used_trials_);
  }

  /// Splits the *remaining* budget into `k` near-equal sub-budgets — the
  /// paper's "(T - t) / K" division across predicted graphs. Uses ceiling
  /// division so the remainder trials go to the first sub-budgets instead
  /// of being dropped (10 trials / 3 skeletons → 4, then 3, then 3 when
  /// callers re-split the remainder after each skeleton).
  Budget SplitRemaining(int k) const {
    k = std::max(1, k);
    int share = std::max(1, (remaining_trials() + k - 1) / k);
    return Budget(share,
                  deadline_.RemainingSeconds() / static_cast<double>(k));
  }

 private:
  int max_trials_;
  int used_trials_ = 0;
  Deadline deadline_;
};

/// One completed trial.
struct TrialRecord {
  ml::PipelineSpec spec;
  double score = -1e18;
};

/// Featurizes a training table once (with an internal train/validation
/// holdout) and evaluates pipeline configurations against the holdout.
/// Sharing one featurization across every trial is what lets the 1-core
/// benchmark suite finish; it matches how real AutoML systems cache
/// data preparation.
class TrialEvaluator {
 public:
  /// `holdout_fraction` rows go to validation.
  static Result<TrialEvaluator> Create(const Table& train, TaskType task,
                                       double holdout_fraction,
                                       uint64_t seed);

  /// Fits `spec` on the fit split, scores on the holdout (macro-F1 / R²).
  /// Errors (e.g. unsupported learner) surface as a status.
  Result<double> Evaluate(const ml::PipelineSpec& spec, uint64_t seed) const;

  TaskType task() const { return task_; }
  const ml::LabeledData& fit_data() const { return fit_data_; }
  const std::vector<TrialRecord>& history() const { return history_; }
  void Record(const ml::PipelineSpec& spec, double score) {
    history_.push_back({spec, score});
  }

 private:
  TaskType task_ = TaskType::kBinaryClassification;
  ml::LabeledData fit_data_;
  ml::LabeledData holdout_data_;
  std::vector<TrialRecord> history_;
};

}  // namespace kgpip::hpo

#endif  // KGPIP_HPO_EVALUATOR_H_
