#include "hpo/trial_guard.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace kgpip::hpo {

const char* TrialFailureName(TrialFailure failure) {
  switch (failure) {
    case TrialFailure::kNone:
      return "none";
    case TrialFailure::kError:
      return "error";
    case TrialFailure::kNanScore:
      return "nan_score";
    case TrialFailure::kTimeout:
      return "timeout";
    case TrialFailure::kCircuitOpen:
      return "circuit_open";
  }
  return "unknown";
}

SkeletonReport* RunReport::FindOrAdd(const std::string& key) {
  for (SkeletonReport& s : skeletons) {
    if (s.key == key) return &s;
  }
  skeletons.push_back(SkeletonReport{});
  skeletons.back().key = key;
  return &skeletons.back();
}

const SkeletonReport* RunReport::Find(const std::string& key) const {
  for (const SkeletonReport& s : skeletons) {
    if (s.key == key) return &s;
  }
  return nullptr;
}

Json RunReport::ToJson() const {
  Json out = Json::Object();
  Json groups = Json::Array();
  for (const SkeletonReport& s : skeletons) {
    Json g = Json::Object();
    g.Set("key", s.key);
    g.Set("trials", s.trials);
    g.Set("failures", s.failures);
    g.Set("retries", s.retries);
    g.Set("nan_quarantined", s.nan_quarantined);
    g.Set("timeouts", s.timeouts);
    g.Set("abandoned", s.abandoned);
    g.Set("redistributed_trials", s.redistributed_trials);
    g.Set("best_score", s.best_score);
    groups.Append(std::move(g));
  }
  out.Set("skeletons", std::move(groups));
  Json taxonomy = Json::Object();
  for (const auto& [code, count] : failures_by_code) {
    taxonomy.Set(StatusCodeName(code), count);
  }
  out.Set("failures_by_code", std::move(taxonomy));
  out.Set("total_trials", total_trials);
  out.Set("total_failures", total_failures);
  out.Set("total_retries", total_retries);
  out.Set("quarantined_scores", quarantined_scores);
  out.Set("timeouts", timeouts);
  out.Set("circuit_breaker_trips", circuit_breaker_trips);
  out.Set("lint_rejected", lint_rejected);
  Json lint_codes = Json::Object();
  for (const auto& [code, count] : lint_rejected_by_code) {
    lint_codes.Set(code, count);
  }
  out.Set("lint_rejected_by_code", std::move(lint_codes));
  out.Set("simulated_backoff_seconds", simulated_backoff_seconds);
  out.Set("fallback_portfolio", fallback_portfolio);
  out.Set("last_resort_pass", last_resort_pass);
  out.Set("returned_best_so_far", returned_best_so_far);
  out.Set("cache_hit", cache_hit);
  out.Set("degradation_level", degradation_level);
  out.Set("notes", notes);
  if (!stage_profile.empty()) {
    out.Set("stage_profile", stage_profile.ToJson());
  }
  return out;
}

std::string RunReport::Summary() const {
  std::string out = StrFormat(
      "trials=%d failures=%d retries=%d nan=%d timeouts=%d breaker=%d "
      "lint_rejected=%d",
      total_trials, total_failures, total_retries, quarantined_scores,
      timeouts, circuit_breaker_trips, lint_rejected);
  if (fallback_portfolio) out += " fallback_portfolio";
  if (last_resort_pass) out += " last_resort";
  if (returned_best_so_far) out += " best_so_far";
  if (cache_hit) out += " cache_hit";
  if (degradation_level > 0) {
    out += StrFormat(" degraded=%d", degradation_level);
  }
  return out;
}

GuardedTrial TrialGuard::Evaluate(const ml::PipelineSpec& spec,
                                  uint64_t seed, const std::string& group) {
  GuardedTrial out;
  if (CircuitOpen(group)) {
    out.failure = TrialFailure::kCircuitOpen;
    out.code = StatusCode::kFailedPrecondition;
    return out;
  }

  SkeletonReport* sr = report_.FindOrAdd(group);
  ++sr->trials;
  ++report_.total_trials;

  // Mirror the report's accounting into the global metrics registry so a
  // live metrics snapshot shows guard activity mid-run.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  static obs::Counter* trials = metrics.GetCounter("hpo.trials");
  static obs::Counter* failures = metrics.GetCounter("hpo.trial_failures");
  static obs::Counter* retries = metrics.GetCounter("hpo.trial_retries");
  static obs::Counter* quarantined =
      metrics.GetCounter("hpo.quarantined_scores");
  static obs::Counter* timeouts = metrics.GetCounter("hpo.timeouts");
  static obs::Counter* breaker_trips =
      metrics.GetCounter("hpo.circuit_breaker_trips");
  static obs::Histogram* trial_seconds =
      metrics.GetHistogram("hpo.trial_seconds");
  trials->Increment();

  KGPIP_TRACE_SPAN("hpo.trial");
  util::FaultInjector* inject = util::FaultInjector::Active();
  Stopwatch watch;
  struct RecordOnExit {
    obs::Histogram* hist;
    Stopwatch* watch;
    ~RecordOnExit() { hist->Record(watch->ElapsedSeconds()); }
  } record{trial_seconds, &watch};
  double injected_delay = 0.0;
  Status error;
  for (int attempt = 0;; ++attempt) {
    // Each attempt re-seeds so a retry is not a bit-identical rerun.
    uint64_t attempt_seed =
        seed + static_cast<uint64_t>(attempt) * 0x9E3779B9ULL;
    Result<double> score = inject != nullptr
                               ? [&]() -> Result<double> {
                                   if (auto fault =
                                           inject->EvaluatorFault(
                                               spec.learner)) {
                                     return *fault;
                                   }
                                   return evaluator_->Evaluate(spec,
                                                               attempt_seed);
                                 }()
                               : evaluator_->Evaluate(spec, attempt_seed);
    if (inject != nullptr) {
      injected_delay += inject->InjectedDelaySeconds(spec.learner);
    }

    if (score.ok()) {
      double value = *score;
      if (inject != nullptr && inject->InjectNanScore(spec.learner)) {
        value = std::nan("");
      }
      // NaN/Inf quarantine: a non-finite score must never reach the
      // searcher's comparisons or the incumbent. Not transient, so no
      // retry.
      if (!std::isfinite(value)) {
        out.failure = TrialFailure::kNanScore;
        out.code = StatusCode::kOutOfRange;
        ++sr->nan_quarantined;
        ++report_.quarantined_scores;
        quarantined->Increment();
        break;
      }
      double elapsed = watch.ElapsedSeconds() + injected_delay;
      if (options_.trial_deadline_seconds > 0.0 &&
          elapsed > options_.trial_deadline_seconds) {
        out.failure = TrialFailure::kTimeout;
        out.code = StatusCode::kResourceExhausted;
        ++sr->timeouts;
        ++report_.timeouts;
        timeouts->Increment();
        break;
      }
      out.score = value;
      out.failure = TrialFailure::kNone;
      out.code = StatusCode::kOk;
      break;
    }

    error = score.status();
    const bool transient = error.code() == StatusCode::kInternal ||
                           error.code() == StatusCode::kResourceExhausted;
    if (transient && out.retries < options_.max_retries) {
      ++out.retries;
      ++sr->retries;
      ++report_.total_retries;
      retries->Increment();
      report_.simulated_backoff_seconds +=
          options_.retry_backoff_seconds * static_cast<double>(1 << attempt);
      continue;
    }
    out.failure = TrialFailure::kError;
    out.code = error.code();
    break;
  }

  evaluator_->Record(spec, out.ok() ? out.score : -1e18);
  if (out.ok()) {
    breaker_.RecordSuccess(group);
    if (out.score > sr->best_score) sr->best_score = out.score;
    return out;
  }

  ++sr->failures;
  ++report_.total_failures;
  ++report_.failures_by_code[out.code];
  failures->Increment();
  if (breaker_.RecordFailure(group)) {
    sr->abandoned = true;
    ++report_.circuit_breaker_trips;
    breaker_trips->Increment();
  }
  return out;
}

void TrialGuard::NoteRedistribution(const std::string& group, int trials) {
  if (trials <= 0) return;
  report_.FindOrAdd(group)->redistributed_trials += trials;
}

}  // namespace kgpip::hpo
