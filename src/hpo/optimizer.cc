#include "hpo/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace kgpip::hpo {

CfoSearch::CfoSearch(SearchSpace space, uint64_t seed)
    : space_(std::move(space)), rng_(seed) {}

ml::HyperParams CfoSearch::Propose() {
  if (first_) return space_.DefaultConfig();
  if (rng_.Bernoulli(0.08)) return space_.Sample(&rng_);  // restart kick
  return space_.Perturb(incumbent_, step_, &rng_);
}

void CfoSearch::Tell(const ml::HyperParams& config, double score) {
  // A NaN score compares false against everything, which used to flip
  // `first_` while leaving `best_config_` unset — the search could then
  // return an empty incumbent. Treat non-finite scores as failures: they
  // shrink the step but never win a comparison, and until a finite score
  // arrives the last-told config stands in as the incumbent so the
  // search never returns an empty configuration.
  const bool finite = std::isfinite(score);
  if (finite && score > best_score_) {
    best_score_ = score;
    best_config_ = config;
    has_best_ = true;
  } else if (!has_best_) {
    best_config_ = config;
  }
  if (first_) {
    first_ = false;
    incumbent_ = config;
    incumbent_score_ = finite ? score : -1e18;
    return;
  }
  if (finite && score > incumbent_score_) {
    incumbent_ = config;
    incumbent_score_ = score;
    step_ = std::min(0.6, step_ * 1.2);  // expand on success
  } else {
    step_ = std::max(0.05, step_ * 0.85);  // shrink on failure
  }
}

RandomSearch::RandomSearch(SearchSpace space, uint64_t seed)
    : space_(std::move(space)), rng_(seed) {}

ml::HyperParams RandomSearch::Propose() {
  if (first_) return space_.DefaultConfig();
  return space_.Sample(&rng_);
}

void RandomSearch::Tell(const ml::HyperParams& config, double score) {
  first_ = false;
  if (std::isfinite(score) && score > best_score_) {
    best_score_ = score;
    best_config_ = config;
    has_best_ = true;
  } else if (!has_best_) {
    best_config_ = config;  // never return an empty incumbent
  }
}

namespace {

/// Runs any Propose/Tell searcher through the trial guard until the
/// budget runs out or the skeleton's circuit breaker opens; shared by
/// both optimizers.
template <typename Search>
OptimizeResult RunSearch(Search* search, const ml::PipelineSpec& skeleton,
                         TrialGuard* guard, Budget* budget,
                         uint64_t seed) {
  OptimizeResult result;
  result.best_spec = skeleton;
  const std::string group = skeleton.ToString();
  uint64_t trial_seed = seed;
  while (!guard->CircuitOpen(group) && budget->ConsumeTrial()) {
    ml::HyperParams config = search->Propose();
    ml::PipelineSpec spec = skeleton;
    // Merge skeleton params under the proposed configuration.
    for (const auto& [k, v] : config.numeric()) spec.params.SetNum(k, v);
    for (const auto& [k, v] : config.strings()) spec.params.SetStr(k, v);
    GuardedTrial trial = guard->Evaluate(spec, ++trial_seed, group);
    ++result.trials;
    if (trial.ok()) {
      search->Tell(config, trial.score);
      if (trial.score > result.best_score) {
        result.best_score = trial.score;
        result.best_spec = spec;
      }
    } else {
      // Failure signal: NaN shrinks CFO's step without polluting the
      // incumbent (the searchers are NaN-safe by contract).
      search->Tell(config, std::numeric_limits<double>::quiet_NaN());
      ++result.failures;
    }
  }
  if (guard->CircuitOpen(group)) {
    result.abandoned = true;
    guard->NoteRedistribution(group, budget->remaining_trials());
  }
  return result;
}

class FlamlOptimizer : public HpOptimizer {
 public:
  OptimizeResult OptimizeSkeleton(const ml::PipelineSpec& skeleton,
                                  TrialGuard* guard, Budget* budget,
                                  uint64_t seed) const override {
    CfoSearch search(
        SpaceForSkeleton(skeleton.learner, skeleton.preprocessors), seed);
    return RunSearch(&search, skeleton, guard, budget, seed);
  }
  std::string name() const override { return "flaml"; }
};

class AskOptimizer : public HpOptimizer {
 public:
  OptimizeResult OptimizeSkeleton(const ml::PipelineSpec& skeleton,
                                  TrialGuard* guard, Budget* budget,
                                  uint64_t seed) const override {
    RandomSearch search(
        SpaceForSkeleton(skeleton.learner, skeleton.preprocessors), seed);
    return RunSearch(&search, skeleton, guard, budget, seed);
  }
  std::string name() const override { return "autosklearn"; }
};

}  // namespace

Result<std::unique_ptr<HpOptimizer>> CreateOptimizer(
    const std::string& name) {
  std::unique_ptr<HpOptimizer> out;
  if (name == "flaml") {
    out = std::make_unique<FlamlOptimizer>();
  } else if (name == "autosklearn") {
    out = std::make_unique<AskOptimizer>();
  } else {
    return Status::NotFound("unknown optimizer '" + name + "'");
  }
  return out;
}

}  // namespace kgpip::hpo
