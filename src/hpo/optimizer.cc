#include "hpo/optimizer.h"

#include <algorithm>

namespace kgpip::hpo {

CfoSearch::CfoSearch(SearchSpace space, uint64_t seed)
    : space_(std::move(space)), rng_(seed) {}

ml::HyperParams CfoSearch::Propose() {
  if (first_) return space_.DefaultConfig();
  if (rng_.Bernoulli(0.08)) return space_.Sample(&rng_);  // restart kick
  return space_.Perturb(incumbent_, step_, &rng_);
}

void CfoSearch::Tell(const ml::HyperParams& config, double score) {
  if (score > best_score_) {
    best_score_ = score;
    best_config_ = config;
  }
  if (first_) {
    first_ = false;
    incumbent_ = config;
    incumbent_score_ = score;
    return;
  }
  if (score > incumbent_score_) {
    incumbent_ = config;
    incumbent_score_ = score;
    step_ = std::min(0.6, step_ * 1.2);  // expand on success
  } else {
    step_ = std::max(0.05, step_ * 0.85);  // shrink on failure
  }
}

RandomSearch::RandomSearch(SearchSpace space, uint64_t seed)
    : space_(std::move(space)), rng_(seed) {}

ml::HyperParams RandomSearch::Propose() {
  if (first_) return space_.DefaultConfig();
  return space_.Sample(&rng_);
}

void RandomSearch::Tell(const ml::HyperParams& config, double score) {
  first_ = false;
  if (score > best_score_) {
    best_score_ = score;
    best_config_ = config;
  }
}

namespace {

/// Runs any Propose/Tell searcher against the evaluator until the budget
/// runs out; shared by both optimizers.
template <typename Search>
OptimizeResult RunSearch(Search* search, const ml::PipelineSpec& skeleton,
                         TrialEvaluator* evaluator, Budget* budget,
                         uint64_t seed) {
  OptimizeResult result;
  result.best_spec = skeleton;
  uint64_t trial_seed = seed;
  while (budget->ConsumeTrial()) {
    ml::HyperParams config = search->Propose();
    ml::PipelineSpec spec = skeleton;
    // Merge skeleton params under the proposed configuration.
    for (const auto& [k, v] : config.numeric()) spec.params.SetNum(k, v);
    for (const auto& [k, v] : config.strings()) spec.params.SetStr(k, v);
    auto score = evaluator->Evaluate(spec, ++trial_seed);
    double value = score.ok() ? *score : -1e18;
    search->Tell(config, value);
    evaluator->Record(spec, value);
    ++result.trials;
    if (value > result.best_score) {
      result.best_score = value;
      result.best_spec = spec;
    }
  }
  return result;
}

class FlamlOptimizer : public HpOptimizer {
 public:
  OptimizeResult OptimizeSkeleton(const ml::PipelineSpec& skeleton,
                                  TrialEvaluator* evaluator, Budget* budget,
                                  uint64_t seed) const override {
    CfoSearch search(
        SpaceForSkeleton(skeleton.learner, skeleton.preprocessors), seed);
    return RunSearch(&search, skeleton, evaluator, budget, seed);
  }
  std::string name() const override { return "flaml"; }
};

class AskOptimizer : public HpOptimizer {
 public:
  OptimizeResult OptimizeSkeleton(const ml::PipelineSpec& skeleton,
                                  TrialEvaluator* evaluator, Budget* budget,
                                  uint64_t seed) const override {
    RandomSearch search(
        SpaceForSkeleton(skeleton.learner, skeleton.preprocessors), seed);
    return RunSearch(&search, skeleton, evaluator, budget, seed);
  }
  std::string name() const override { return "autosklearn"; }
};

}  // namespace

Result<std::unique_ptr<HpOptimizer>> CreateOptimizer(
    const std::string& name) {
  std::unique_ptr<HpOptimizer> out;
  if (name == "flaml") {
    out = std::make_unique<FlamlOptimizer>();
  } else if (name == "autosklearn") {
    out = std::make_unique<AskOptimizer>();
  } else {
    return Status::NotFound("unknown optimizer '" + name + "'");
  }
  return out;
}

}  // namespace kgpip::hpo
