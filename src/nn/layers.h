#ifndef KGPIP_NN_LAYERS_H_
#define KGPIP_NN_LAYERS_H_

#include <string>
#include <vector>

#include "nn/autograd.h"
#include "util/json.h"
#include "util/status.h"

namespace kgpip::nn {

/// Owns every trainable parameter of a model; the optimizer and the
/// (de)serializer iterate over it.
class ParamStore {
 public:
  /// Registers a parameter (Xavier-initialized) and returns its Var.
  Var Create(const std::string& name, size_t rows, size_t cols, Rng* rng);

  /// All registered parameters in registration order.
  const std::vector<Var>& params() const { return params_; }

  void ZeroGrads();

  /// Total number of scalar parameters.
  size_t TotalSize() const;

  /// Serializes all parameter values to JSON (name -> flat array + shape).
  Json ToJson() const;

  /// Restores values from `ToJson` output; shapes must match.
  Status FromJson(const Json& json);

 private:
  std::vector<Var> params_;
  std::vector<std::string> names_;
};

/// Fully connected layer: y = x W + b.
class Linear {
 public:
  Linear() = default;
  Linear(ParamStore* store, const std::string& name, size_t in, size_t out,
         Rng* rng);

  Var Forward(const Var& x) const;

 private:
  Var weight_;
  Var bias_;
};

/// Batched GRU cell applied row-wise: every row of `h` (one graph node) is
/// updated from the matching row of `x` (its aggregated message). This is
/// the propagation-update used by the Li et al. (2018) graph generator.
class GruCell {
 public:
  GruCell() = default;
  GruCell(ParamStore* store, const std::string& name, size_t input,
          size_t hidden, Rng* rng);

  Var Forward(const Var& x, const Var& h) const;

 private:
  Linear xz_, hz_;  // update gate
  Linear xr_, hr_;  // reset gate
  Linear xn_, hn_;  // candidate
};

/// Adam optimizer over a ParamStore.
class Adam {
 public:
  explicit Adam(ParamStore* store, double lr = 1e-3, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8);

  /// Applies one update from the accumulated gradients, then zeroes them.
  /// Gradients are clipped to a global norm of `clip` first (0 = off).
  void Step(double clip = 5.0);

  void set_learning_rate(double lr) { lr_ = lr; }
  double learning_rate() const { return lr_; }

 private:
  ParamStore* store_;
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  int64_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace kgpip::nn

#endif  // KGPIP_NN_LAYERS_H_
