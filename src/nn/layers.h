#ifndef KGPIP_NN_LAYERS_H_
#define KGPIP_NN_LAYERS_H_

#include <string>
#include <vector>

#include "nn/autograd.h"
#include "nn/inference.h"
#include "util/json.h"
#include "util/status.h"

namespace kgpip::nn {

/// Owns every trainable parameter of a model; the optimizer and the
/// (de)serializer iterate over it.
class ParamStore {
 public:
  /// Registers a parameter (Xavier-initialized) and returns its Var.
  Var Create(const std::string& name, size_t rows, size_t cols, Rng* rng);

  /// All registered parameters in registration order.
  const std::vector<Var>& params() const { return params_; }

  void ZeroGrads();

  /// Total number of scalar parameters.
  size_t TotalSize() const;

  /// Serializes all parameter values to JSON (name -> flat array + shape).
  Json ToJson() const;

  /// Restores values from `ToJson` output; shapes must match.
  Status FromJson(const Json& json);

 private:
  std::vector<Var> params_;
  std::vector<std::string> names_;
};

/// Fully connected layer: y = x W + b.
class Linear {
 public:
  Linear() = default;
  Linear(ParamStore* store, const std::string& name, size_t in, size_t out,
         Rng* rng);

  Var Forward(const Var& x) const;

  /// Tape-free forward into a caller-owned buffer, optionally fused with
  /// an activation. Bit-identical to `Act(Forward(Var(x))).value()` but
  /// never touches the autograd tape and performs no allocation once
  /// `out` has capacity.
  void ForwardValue(const Matrix& x, Matrix* out,
                    Activation act = Activation::kNone) const;

  const Matrix& weight_value() const { return weight_.value(); }
  const Matrix& bias_value() const { return bias_.value(); }

 private:
  Var weight_;
  Var bias_;
};

/// Caller-owned temporaries for GruCell::ForwardValue; sized lazily and
/// reused across calls so steady-state propagation allocates nothing.
struct GruScratch {
  Matrix z;     // update gate
  Matrix r;     // reset gate
  Matrix cand;  // candidate state
  Matrix tmp;   // shared per-gate second operand
  Matrix rh;    // r ⊙ h
};

/// Batched GRU cell applied row-wise: every row of `h` (one graph node) is
/// updated from the matching row of `x` (its aggregated message). This is
/// the propagation-update used by the Li et al. (2018) graph generator.
class GruCell {
 public:
  GruCell() = default;
  GruCell(ParamStore* store, const std::string& name, size_t input,
          size_t hidden, Rng* rng);

  Var Forward(const Var& x, const Var& h) const;

  /// Tape-free forward: `*out = GRU(x, h)` using caller-owned scratch.
  /// Bit-identical to `Forward(Var(x), Var(h)).value()`. `out` must not
  /// alias `x`, `h`, or the scratch buffers.
  void ForwardValue(const Matrix& x, const Matrix& h, GruScratch* scratch,
                    Matrix* out) const;

  /// Packs the gate weights into column-concatenated panels for
  /// GruFusedForward: `wx = [Wxz | Wxr | Wxn]` (input x 3h) with bias
  /// row `bx`, and `wh2 = [Whz | Whr]` (hidden x 2h) with bias `bh2`.
  /// A single GEMM against a panel produces every output column through
  /// the same ascending-k accumulation chain as the per-gate GEMMs, so
  /// fusion is bit-identical; it just amortizes kernel dispatch and
  /// widens the vectorized panels. Cheap enough to call per decode,
  /// which also keeps the panels fresh after further training.
  void PackFused(Matrix* wx, Matrix* bx, Matrix* wh2, Matrix* bh2) const;

  /// Candidate-gate hidden projection, needed separately by the fused
  /// path (its input is r ⊙ h, which depends on the fused gate output).
  const Linear& hn() const { return hn_; }

 private:
  Linear xz_, hz_;  // update gate
  Linear xr_, hr_;  // reset gate
  Linear xn_, hn_;  // candidate
};

/// Adam optimizer over a ParamStore.
class Adam {
 public:
  explicit Adam(ParamStore* store, double lr = 1e-3, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8);

  /// Applies one update from the accumulated gradients, then zeroes them.
  /// Gradients are clipped to a global norm of `clip` first (0 = off).
  void Step(double clip = 5.0);

  void set_learning_rate(double lr) { lr_ = lr; }
  double learning_rate() const { return lr_; }

 private:
  ParamStore* store_;
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  int64_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace kgpip::nn

#endif  // KGPIP_NN_LAYERS_H_
