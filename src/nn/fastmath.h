#ifndef KGPIP_NN_FASTMATH_H_
#define KGPIP_NN_FASTMATH_H_

#include <cmath>
#include <cstdint>
#include <cstring>

namespace kgpip::nn {

/// Branchless double-precision exp/sigmoid/tanh for the network's
/// activation functions.
///
/// The serve path applies activations over whole message/state panels,
/// and libm's scalar `tanh`/`exp` (~13 ns/call here) dominated decode
/// time — neither vectorizes, and their results are not reproducible by
/// any SIMD formulation. These replacements are straight-line
/// arithmetic (Cephes-style argument reduction + a degree-12 Taylor
/// polynomial, ~2 ulp on exp), so the compiler can vectorize the
/// engine's batched loops while the autograd ops call the *same inline
/// functions* per element — keeping the tape and tape-free decode
/// byte-identical, which the gen equivalence suite enforces.
///
/// These define the model's activation semantics everywhere (training
/// and serving). Accuracy notes: FastExp ≈ 2 ulp relative over the
/// clamped range; FastTanh ≈ 1e-16 absolute (the (z-1)/(z+1) form loses
/// relative precision only below |x| ~ 1e-8 where tanh(x) ≈ x ≈ 0);
/// both are monotone to within rounding and never produce inf/nan for
/// finite input, so downstream softmax/sampling arithmetic stays
/// finite.

/// Argument-reduction and polynomial constants of FastExp, shared with
/// the intrinsic vector kernels (simd_kernels_impl.h) so the scalar and
/// SIMD formulations are one arithmetic expression evaluated at
/// different widths — any edit here changes both in lockstep, which is
/// what keeps them bit-identical.
namespace fastexp {
inline constexpr double kLog2e = 1.4426950408889634074;
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
inline constexpr double kClamp = 708.0;
/// Degree-12 Taylor/Horner: leading coefficient, then the 12 addends
/// applied as p = p * r + kPoly[i].
inline constexpr double kPolyLead = 1.0 / 479001600.0;
inline constexpr double kPoly[12] = {
    1.0 / 39916800.0, 1.0 / 3628800.0, 1.0 / 362880.0, 1.0 / 40320.0,
    1.0 / 5040.0,     1.0 / 720.0,     1.0 / 120.0,    1.0 / 24.0,
    1.0 / 6.0,        1.0 / 2.0,       1.0,            1.0};
/// tanh's |x| clamp (tanh(20) already rounds to 1.0 in double).
inline constexpr double kTanhClamp = 20.0;
}  // namespace fastexp

/// exp(x) with the input clamped to [-708, 708] (keeps the 2^k scale a
/// normal double; exp(-708) ~ 3e-308 stands in for smaller results).
/// Requires round-to-nearest FP mode (the process default) — the
/// shifter trick below extracts round(x/ln2) without a branch or a
/// libm call.
inline double FastExp(double x) {
  x = x > fastexp::kClamp ? fastexp::kClamp : x;
  x = x < -fastexp::kClamp ? -fastexp::kClamp : x;
  // round(x * log2e) via the 2^52 shifter: adding kShift pushes the
  // fraction off the mantissa, subtracting it back leaves the rounded
  // integer as an exact double.
  const double t = x * fastexp::kLog2e + fastexp::kShift;
  const double kd = t - fastexp::kShift;
  // r = x - k*ln2 in split precision; |r| <= ln2/2, and kd*kLn2Hi is
  // exact (11-bit k times 21-significant-bit hi part).
  const double r = (x - kd * fastexp::kLn2Hi) - kd * fastexp::kLn2Lo;
  // exp(r) by degree-12 Taylor/Horner: the truncation term
  // r^13/13! < 2e-16 over the reduced range.
  double p = fastexp::kPolyLead;
  for (double c : fastexp::kPoly) p = p * r + c;
  // Scale by 2^k through the exponent bits; k is in [-1022, 1022] after
  // the clamp, so the biased exponent stays normal. `int` (not int64)
  // keeps the double->integer conversion SSE2-vectorizable.
  const int ki = static_cast<int>(kd);
  const std::uint64_t bits = static_cast<std::uint64_t>(ki + 1023) << 52;
  double s;
  std::memcpy(&s, &bits, sizeof(s));
  return p * s;
}

/// Logistic sigmoid 1 / (1 + exp(-x)).
inline double FastSigmoid(double x) { return 1.0 / (1.0 + FastExp(-x)); }

/// tanh(x) = sign(x) * (e^{2|x|} - 1) / (e^{2|x|} + 1), with |x| clamped
/// to 20 (tanh(20) already rounds to 1.0 in double).
inline double FastTanh(double x) {
  double ax = std::fabs(x);
  ax = ax > fastexp::kTanhClamp ? fastexp::kTanhClamp : ax;
  const double z = FastExp(2.0 * ax);
  const double t = (z - 1.0) / (z + 1.0);
  return std::copysign(t, x);
}

}  // namespace kgpip::nn

#endif  // KGPIP_NN_FASTMATH_H_
