#ifndef KGPIP_NN_SIMD_KERNELS_ISA_H_
#define KGPIP_NN_SIMD_KERNELS_ISA_H_

// Internal: entry points of the per-ISA kernel translation units.
// Declared unconditionally (harmless on non-x86); DEFINED only when the
// build adds the matching TU, and called only behind the dispatcher's
// KGPIP_SIMD_HAVE_* guards + runtime CPUID check (see simd_kernels.cc).

#include <cstddef>
#include <cstdint>

namespace kgpip::nn::simd::detail {

void GemmAvx2(const double* a, const double* b, double* c, size_t rows,
              size_t ac, size_t bc);
void BiasAvx2(double* c, const double* bias, size_t rows, size_t cols);
void SigmoidAvx2(double* d, size_t n);
void TanhAvx2(double* d, size_t n);
void AddSigmoidAvx2(const double* a, const double* b, double* out, size_t n);
void AddTanhAvx2(const double* a, const double* b, double* out, size_t n);
void MulAvx2(const double* a, const double* b, double* out, size_t n);
void GruCombineAvx2(const double* z, const double* n, const double* h,
                    double* out, size_t count);
void Sq8DotAccumAvx2(const uint8_t* codes, size_t stride, const double* w,
                     size_t dims, double* scores);

void GemmAvx512(const double* a, const double* b, double* c, size_t rows,
                size_t ac, size_t bc);
void BiasAvx512(double* c, const double* bias, size_t rows, size_t cols);
void SigmoidAvx512(double* d, size_t n);
void TanhAvx512(double* d, size_t n);
void AddSigmoidAvx512(const double* a, const double* b, double* out, size_t n);
void AddTanhAvx512(const double* a, const double* b, double* out, size_t n);
void MulAvx512(const double* a, const double* b, double* out, size_t n);
void GruCombineAvx512(const double* z, const double* n, const double* h,
                      double* out, size_t count);
void Sq8DotAccumAvx512(const uint8_t* codes, size_t stride, const double* w,
                       size_t dims, double* scores);

}  // namespace kgpip::nn::simd::detail

#endif  // KGPIP_NN_SIMD_KERNELS_ISA_H_
