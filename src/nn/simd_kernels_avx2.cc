// AVX2 kernel TU. Built with -mavx2 -ffp-contract=off; only ever entered
// through the dispatcher after a runtime CPUID check. Everything but the
// entry points stays in an anonymous namespace so no AVX2-coded comdat
// symbol can leak to scalar callers in other TUs.

#include "nn/simd_kernels_isa.h"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include "nn/simd_kernels_impl.h"

namespace kgpip::nn::simd::detail {
namespace {

struct OpsAvx2 {
  using V = __m256d;
  using MaskT = __m256i;  // per-64-bit-lane sign-bit mask (vmaskmov form)
  static constexpr size_t kW = 4;

  static V Load(const double* p) { return _mm256_loadu_pd(p); }
  static void Store(double* p, V v) { _mm256_storeu_pd(p, v); }
  static MaskT TailMask(size_t n) {
    const __m256i idx = _mm256_setr_epi64x(0, 1, 2, 3);
    return _mm256_cmpgt_epi64(_mm256_set1_epi64x(static_cast<long long>(n)),
                              idx);
  }
  // vmaskmovpd zero-fills disabled lanes on load and leaves memory
  // untouched on store — the tail semantics the kernels rely on.
  static V MaskLoad(const double* p, MaskT m) {
    return _mm256_maskload_pd(p, m);
  }
  static void MaskStore(double* p, MaskT m, V v) {
    _mm256_maskstore_pd(p, m, v);
  }

  static V Broadcast(double x) { return _mm256_set1_pd(x); }
  static V Add(V a, V b) { return _mm256_add_pd(a, b); }
  static V Sub(V a, V b) { return _mm256_sub_pd(a, b); }
  static V Mul(V a, V b) { return _mm256_mul_pd(a, b); }
  static V Div(V a, V b) { return _mm256_div_pd(a, b); }

  // x > b ? b : x — ordered-quiet compare: a NaN lane compares false and
  // keeps x, matching the scalar ternary.
  static V SelGt(V x, V b) {
    return _mm256_blendv_pd(x, b, _mm256_cmp_pd(x, b, _CMP_GT_OQ));
  }
  static V SelLt(V x, V b) {
    return _mm256_blendv_pd(x, b, _mm256_cmp_pd(x, b, _CMP_LT_OQ));
  }

  static V And(V a, V b) { return _mm256_and_pd(a, b); }
  static V AndNot(V a, V b) { return _mm256_andnot_pd(a, b); }
  static V Or(V a, V b) { return _mm256_or_pd(a, b); }
  static V Xor(V a, V b) { return _mm256_xor_pd(a, b); }

  // 2^kd for integral kd in [-1022, 1022]: truncate (exact on integral
  // values, like the scalar static_cast<int>), bias, and place in the
  // exponent field — the same bits FastExp assembles through memcpy.
  static V ExpScale(V kd) {
    __m128i ki = _mm256_cvttpd_epi32(kd);
    ki = _mm_add_epi32(ki, _mm_set1_epi32(1023));
    __m256i wide = _mm256_cvtepi32_epi64(ki);
    wide = _mm256_slli_epi64(wide, 52);
    return _mm256_castsi256_pd(wide);
  }

  // Four uint8 codes zero-extended to doubles. int32 holds [0, 255]
  // exactly, and int32 -> double is exact, so the widen is lossless.
  static V LoadU8(const uint8_t* p) {
    uint32_t packed;
    __builtin_memcpy(&packed, p, sizeof(packed));
    const __m128i bytes = _mm_cvtsi32_si128(static_cast<int>(packed));
    return _mm256_cvtepi32_pd(_mm_cvtepu8_epi32(bytes));
  }
};

using K = Kernels<OpsAvx2>;

}  // namespace

void GemmAvx2(const double* a, const double* b, double* c, size_t rows,
              size_t ac, size_t bc) {
  K::Gemm(a, b, c, rows, ac, bc);
}
void BiasAvx2(double* c, const double* bias, size_t rows, size_t cols) {
  K::Bias(c, bias, rows, cols);
}
void SigmoidAvx2(double* d, size_t n) { K::Sigmoid(d, n); }
void TanhAvx2(double* d, size_t n) { K::Tanh(d, n); }
void AddSigmoidAvx2(const double* a, const double* b, double* out, size_t n) {
  K::AddSigmoid(a, b, out, n);
}
void AddTanhAvx2(const double* a, const double* b, double* out, size_t n) {
  K::AddTanh(a, b, out, n);
}
void MulAvx2(const double* a, const double* b, double* out, size_t n) {
  K::Mul(a, b, out, n);
}
void GruCombineAvx2(const double* z, const double* n, const double* h,
                    double* out, size_t count) {
  K::GruCombine(z, n, h, out, count);
}
void Sq8DotAccumAvx2(const uint8_t* codes, size_t stride, const double* w,
                     size_t dims, double* scores) {
  K::Sq8DotAccum(codes, stride, w, dims, scores);
}

}  // namespace kgpip::nn::simd::detail

#endif  // __x86_64__ && __AVX2__
