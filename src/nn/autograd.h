#ifndef KGPIP_NN_AUTOGRAD_H_
#define KGPIP_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace kgpip::nn {

/// One node of the dynamically built computation graph.
struct VarNode {
  Matrix value;
  Matrix grad;  // same shape as value; lazily sized
  bool requires_grad = false;
  std::vector<std::shared_ptr<VarNode>> parents;
  /// Accumulates gradients into the parents given this node's grad.
  std::function<void(VarNode&)> backward;

  void EnsureGrad() {
    if (!grad.SameShape(value)) grad = Matrix(value.rows(), value.cols());
  }
};

/// Handle to a computation-graph node. Cheap to copy.
///
/// This is a classic define-by-run reverse-mode autograd: every op builds
/// a VarNode holding the forward value and a closure that back-propagates
/// into its parents; `Backward` runs the closures in reverse topological
/// order. It is deliberately small — the DeepGMG generator only needs
/// dense matrix ops — but gradient-checked in tests.
class Var {
 public:
  Var() = default;
  explicit Var(Matrix value, bool requires_grad = false);

  const Matrix& value() const { return node_->value; }
  Matrix& mutable_value() { return node_->value; }
  const Matrix& grad() const { return node_->grad; }
  bool defined() const { return node_ != nullptr; }
  size_t rows() const { return node_->value.rows(); }
  size_t cols() const { return node_->value.cols(); }
  std::shared_ptr<VarNode> node() const { return node_; }

  void ZeroGrad() {
    node_->EnsureGrad();
    node_->grad.Fill(0.0);
  }

 private:
  friend Var MakeOp(Matrix value, std::vector<Var> parents,
                    std::function<void(VarNode&)> backward);
  std::shared_ptr<VarNode> node_;
};

/// Builds an op node (internal; exposed for extensions).
Var MakeOp(Matrix value, std::vector<Var> parents,
           std::function<void(VarNode&)> backward);

/// Runs reverse-mode accumulation from `loss` (must be 1x1).
void Backward(const Var& loss);

// ---- Ops -------------------------------------------------------------

Var MatMul(const Var& a, const Var& b);
Var Add(const Var& a, const Var& b);            // same shape
Var AddRowBroadcast(const Var& a, const Var& row);  // row is 1 x d
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);            // elementwise
Var Scale(const Var& a, double s);
Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Relu(const Var& a);
Var ConcatCols(const Var& a, const Var& b);
Var ConcatRows(const Var& a, const Var& b);
Var GatherRows(const Var& a, const std::vector<size_t>& indices);
/// Inverse of GatherRows: out has `num_rows` rows; row indices[i] of the
/// output accumulates row i of `a` (used for message aggregation).
Var ScatterAddRows(const Var& a, const std::vector<size_t>& indices,
                   size_t num_rows);
Var SumRows(const Var& a);   // n x d -> 1 x d
Var SumAll(const Var& a);    // -> 1 x 1
Var MeanAll(const Var& a);   // -> 1 x 1

/// Numerically stable fused softmax + cross entropy over each row of
/// `logits` against integer `targets` (one per row); returns mean loss
/// (1x1).
Var SoftmaxCrossEntropy(const Var& logits, const std::vector<int>& targets);

/// Stable sigmoid + binary cross entropy on a 1x1 logit.
Var BinaryCrossEntropyWithLogits(const Var& logit, double target);

/// Row-wise softmax probabilities of a forward value (no gradient).
Matrix SoftmaxValue(const Matrix& logits);

}  // namespace kgpip::nn

#endif  // KGPIP_NN_AUTOGRAD_H_
