#include "nn/simd_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "nn/fastmath.h"
#include "nn/simd_kernels_isa.h"
#include "obs/metrics.h"

namespace kgpip::nn::simd {

namespace {

// ---- Scalar reference kernels ------------------------------------------
// Same chains as Matrix::MatMulInto / the fastmath inline functions; the
// quad-unrolled k loop is the auto-vectorizable form PR 5 shipped (four
// sequential adds per element == four separate k passes).

void GemmScalar(const double* a, const double* b, double* c, size_t rows,
                size_t ac, size_t bc) {
  constexpr size_t kTileK = 64;
  constexpr size_t kTileJ = 256;
  for (size_t kk = 0; kk < ac; kk += kTileK) {
    const size_t k_end = kk + kTileK < ac ? kk + kTileK : ac;
    for (size_t jj = 0; jj < bc; jj += kTileJ) {
      const size_t j_end = jj + kTileJ < bc ? jj + kTileJ : bc;
      for (size_t i = 0; i < rows; ++i) {
        double* __restrict crow = c + i * bc;
        const double* arow = a + i * ac;
        size_t k = kk;
        for (; k + 3 < k_end; k += 4) {
          const double a0 = arow[k];
          const double a1 = arow[k + 1];
          const double a2 = arow[k + 2];
          const double a3 = arow[k + 3];
          const double* __restrict b0 = b + k * bc;
          const double* __restrict b1 = b0 + bc;
          const double* __restrict b2 = b1 + bc;
          const double* __restrict b3 = b2 + bc;
          if (a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0) {
            for (size_t j = jj; j < j_end; ++j) {
              crow[j] = (((crow[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) +
                        a3 * b3[j];
            }
          } else {
            // A zero coefficient must be *skipped*, not added: c += 0.0
            // would flip a -0.0 accumulator to +0.0.
            if (a0 != 0.0) {
              for (size_t j = jj; j < j_end; ++j) crow[j] += a0 * b0[j];
            }
            if (a1 != 0.0) {
              for (size_t j = jj; j < j_end; ++j) crow[j] += a1 * b1[j];
            }
            if (a2 != 0.0) {
              for (size_t j = jj; j < j_end; ++j) crow[j] += a2 * b2[j];
            }
            if (a3 != 0.0) {
              for (size_t j = jj; j < j_end; ++j) crow[j] += a3 * b3[j];
            }
          }
        }
        for (; k < k_end; ++k) {
          const double aik = arow[k];
          if (aik == 0.0) continue;
          const double* __restrict brow = b + k * bc;
          for (size_t j = jj; j < j_end; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

void BiasScalar(double* c, const double* bias, size_t rows, size_t cols) {
  for (size_t i = 0; i < rows; ++i) {
    double* row = c + i * cols;
    for (size_t j = 0; j < cols; ++j) row[j] += bias[j];
  }
}

void SigmoidScalar(double* d, size_t n) {
  for (size_t i = 0; i < n; ++i) d[i] = FastSigmoid(d[i]);
}

void TanhScalar(double* d, size_t n) {
  for (size_t i = 0; i < n; ++i) d[i] = FastTanh(d[i]);
}

void AddSigmoidScalar(const double* a, const double* b, double* out,
                      size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = FastSigmoid(a[i] + b[i]);
}

void AddTanhScalar(const double* a, const double* b, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = FastTanh(a[i] + b[i]);
}

void MulScalar(const double* a, const double* b, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void GruCombineScalar(const double* z, const double* n, const double* h,
                      double* out, size_t count) {
  for (size_t k = 0; k < count; ++k) {
    const double zn = z[k] * n[k];
    const double a = n[k] + (-1.0) * zn;
    out[k] = a + z[k] * h[k];
  }
}

void Sq8DotAccumScalar(const uint8_t* codes, size_t stride, const double* w,
                       size_t dims, double* scores) {
  // One independent ascending-d chain per score — the same chain the
  // vector kernels keep in one lane.
  for (size_t r = 0; r < stride; ++r) {
    double acc = scores[r];
    const uint8_t* col = codes + r;
    for (size_t d = 0; d < dims; ++d) {
      acc += w[d] * static_cast<double>(col[d * stride]);
    }
    scores[r] = acc;
  }
}

// ---- Dispatch state ----------------------------------------------------

// -1 = unresolved; resolved values are the Isa enum. Resolution is
// idempotent (pure function of env + CPUID), so a startup race just
// publishes the same value twice.
std::atomic<int> g_active{-1};

Isa ClampToSupported(Isa isa) {
  if (isa == Isa::kAvx512 && !IsaSupported(Isa::kAvx512)) isa = Isa::kAvx2;
  if (isa == Isa::kAvx2 && !IsaSupported(Isa::kAvx2)) isa = Isa::kScalar;
  return isa;
}

Isa ResolveFromEnv() {
  Isa isa = BestSupportedIsa();
  if (const char* env = std::getenv("KGPIP_ISA")) {
    if (std::strcmp(env, "scalar") == 0) {
      isa = Isa::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      isa = Isa::kAvx2;
    } else if (std::strcmp(env, "avx512") == 0) {
      isa = Isa::kAvx512;
    }
    // Unknown values keep the CPUID pick; a request for a level the host
    // lacks clamps down rather than crashing on illegal instructions.
    isa = ClampToSupported(isa);
  }
  return isa;
}

Isa Publish(Isa isa) {
  g_active.store(static_cast<int>(isa), std::memory_order_relaxed);
  obs::MetricsRegistry::Global()
      .GetGauge("nn.isa_level")
      ->Set(static_cast<double>(static_cast<int>(isa)));
  return isa;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool IsaCompiled(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(KGPIP_SIMD_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(KGPIP_SIMD_HAVE_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool IsaSupported(Isa isa) {
  if (!IsaCompiled(isa)) return false;
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      // __builtin_cpu_supports folds in the XGETBV/OS-state checks.
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
  }
  return false;
}

Isa BestSupportedIsa() {
  if (IsaSupported(Isa::kAvx512)) return Isa::kAvx512;
  if (IsaSupported(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

Isa ActiveIsa() {
  const int v = g_active.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Isa>(v);
  return Publish(ResolveFromEnv());
}

Isa ForceIsa(Isa isa) { return Publish(ClampToSupported(isa)); }

Isa RefreshIsaFromEnv() { return Publish(ResolveFromEnv()); }

// ---- Dispatched kernels ------------------------------------------------
// The per-level cases collapse to scalar when the variant was not
// compiled in (non-x86 targets), keeping every call site portable.

void GemmRows(Isa isa, const double* a, const double* b, double* c,
              size_t rows, size_t ac, size_t bc) {
  switch (isa) {
#if defined(KGPIP_SIMD_HAVE_AVX512)
    case Isa::kAvx512:
      detail::GemmAvx512(a, b, c, rows, ac, bc);
      return;
#endif
#if defined(KGPIP_SIMD_HAVE_AVX2)
    case Isa::kAvx2:
      detail::GemmAvx2(a, b, c, rows, ac, bc);
      return;
#endif
    default:
      GemmScalar(a, b, c, rows, ac, bc);
      return;
  }
}

void BiasRows(Isa isa, double* c, const double* bias, size_t rows,
              size_t cols) {
  switch (isa) {
#if defined(KGPIP_SIMD_HAVE_AVX512)
    case Isa::kAvx512:
      detail::BiasAvx512(c, bias, rows, cols);
      return;
#endif
#if defined(KGPIP_SIMD_HAVE_AVX2)
    case Isa::kAvx2:
      detail::BiasAvx2(c, bias, rows, cols);
      return;
#endif
    default:
      BiasScalar(c, bias, rows, cols);
      return;
  }
}

void SigmoidN(Isa isa, double* d, size_t n) {
  switch (isa) {
#if defined(KGPIP_SIMD_HAVE_AVX512)
    case Isa::kAvx512:
      detail::SigmoidAvx512(d, n);
      return;
#endif
#if defined(KGPIP_SIMD_HAVE_AVX2)
    case Isa::kAvx2:
      detail::SigmoidAvx2(d, n);
      return;
#endif
    default:
      SigmoidScalar(d, n);
      return;
  }
}

void TanhN(Isa isa, double* d, size_t n) {
  switch (isa) {
#if defined(KGPIP_SIMD_HAVE_AVX512)
    case Isa::kAvx512:
      detail::TanhAvx512(d, n);
      return;
#endif
#if defined(KGPIP_SIMD_HAVE_AVX2)
    case Isa::kAvx2:
      detail::TanhAvx2(d, n);
      return;
#endif
    default:
      TanhScalar(d, n);
      return;
  }
}

void AddSigmoidN(Isa isa, const double* a, const double* b, double* out,
                 size_t n) {
  switch (isa) {
#if defined(KGPIP_SIMD_HAVE_AVX512)
    case Isa::kAvx512:
      detail::AddSigmoidAvx512(a, b, out, n);
      return;
#endif
#if defined(KGPIP_SIMD_HAVE_AVX2)
    case Isa::kAvx2:
      detail::AddSigmoidAvx2(a, b, out, n);
      return;
#endif
    default:
      AddSigmoidScalar(a, b, out, n);
      return;
  }
}

void AddTanhN(Isa isa, const double* a, const double* b, double* out,
              size_t n) {
  switch (isa) {
#if defined(KGPIP_SIMD_HAVE_AVX512)
    case Isa::kAvx512:
      detail::AddTanhAvx512(a, b, out, n);
      return;
#endif
#if defined(KGPIP_SIMD_HAVE_AVX2)
    case Isa::kAvx2:
      detail::AddTanhAvx2(a, b, out, n);
      return;
#endif
    default:
      AddTanhScalar(a, b, out, n);
      return;
  }
}

void MulN(Isa isa, const double* a, const double* b, double* out, size_t n) {
  switch (isa) {
#if defined(KGPIP_SIMD_HAVE_AVX512)
    case Isa::kAvx512:
      detail::MulAvx512(a, b, out, n);
      return;
#endif
#if defined(KGPIP_SIMD_HAVE_AVX2)
    case Isa::kAvx2:
      detail::MulAvx2(a, b, out, n);
      return;
#endif
    default:
      MulScalar(a, b, out, n);
      return;
  }
}

void GruCombineN(Isa isa, const double* z, const double* n, const double* h,
                 double* out, size_t count) {
  switch (isa) {
#if defined(KGPIP_SIMD_HAVE_AVX512)
    case Isa::kAvx512:
      detail::GruCombineAvx512(z, n, h, out, count);
      return;
#endif
#if defined(KGPIP_SIMD_HAVE_AVX2)
    case Isa::kAvx2:
      detail::GruCombineAvx2(z, n, h, out, count);
      return;
#endif
    default:
      GruCombineScalar(z, n, h, out, count);
      return;
  }
}

void Sq8DotAccum(Isa isa, const uint8_t* codes, size_t stride,
                 const double* w, size_t dims, double* scores) {
  switch (isa) {
#if defined(KGPIP_SIMD_HAVE_AVX512)
    case Isa::kAvx512:
      detail::Sq8DotAccumAvx512(codes, stride, w, dims, scores);
      return;
#endif
#if defined(KGPIP_SIMD_HAVE_AVX2)
    case Isa::kAvx2:
      detail::Sq8DotAccumAvx2(codes, stride, w, dims, scores);
      return;
#endif
    default:
      Sq8DotAccumScalar(codes, stride, w, dims, scores);
      return;
  }
}

}  // namespace kgpip::nn::simd
