#ifndef KGPIP_NN_SIMD_KERNELS_IMPL_H_
#define KGPIP_NN_SIMD_KERNELS_IMPL_H_

// Templated bodies of the intrinsic kernels, included ONLY by the
// per-ISA translation units (simd_kernels_avx2.cc / _avx512.cc), each of
// which supplies a vector-ops trait and builds with the matching -m
// flag. One arithmetic expression, evaluated at different widths.
//
// Bit-identity ground rules (enforced by tests/simd_kernel_test.cc):
//   - Packed IEEE add/sub/mul/div round per lane exactly like their
//     scalar forms, so any kernel whose lanes map to independent output
//     elements is width-invariant by construction.
//   - No FMA: multiply and add are issued as separate intrinsics and
//     these TUs build with -ffp-contract=off, so the compiler may not
//     re-fuse them.
//   - GEMM replays Matrix::MatMulInto's exact chain per output element:
//     same k/j tile bounds, ascending k, the a(i,k)==0.0 *skip* (adding
//     0.0 would flip a -0.0 accumulator to +0.0), and C read/written at
//     tile boundaries just like the reference's in-memory accumulator.
//   - The transcendental kernels evaluate FastExp/FastSigmoid/FastTanh
//     (fastmath.h) as the same straight-line expression over shared
//     constants; clamps use compare+blend so a NaN lane takes the same
//     path as the scalar ternary (NaN compares false, keeps x).
//   - Ragged tails use masked loads/stores of the SAME vector
//     expression rather than scalar cleanup calls: disabled lanes load
//     as 0.0, compute junk, and are never stored. (Calling the inline
//     fastmath functions here could let the linker keep THIS TU's
//     AVX-coded comdat copy for scalar callers elsewhere — an ISA trap
//     we avoid by never referencing them.)
//
// The Ops trait contract:
//   using V = <vector of kW doubles>;  using MaskT = <lane mask>;
//   static constexpr size_t kW;
//   Load/Store (unaligned), MaskLoad (zeroing)/MaskStore, TailMask(n)
//   Broadcast, Add, Sub, Mul, Div
//   SelGt(x, b) -> x > b ? b : x;  SelLt(x, b) -> x < b ? b : x
//   And/AndNot/Or/Xor (bitwise on the double pattern)
//   ExpScale(kd) -> 2^kd via exponent-bit construction (kd integral)
//   LoadU8(p) -> kW uint8 codes zero-extended to doubles (exact)

#include <cstddef>
#include <cstdint>

#include "nn/fastmath.h"

namespace kgpip::nn::simd::detail {

template <class Ops>
struct Kernels {
  using V = typename Ops::V;
  using MaskT = typename Ops::MaskT;
  static constexpr size_t kW = Ops::kW;

  // ---- GEMM -------------------------------------------------------------

  // One register-blocked panel: MR rows x NV vector columns, accumulators
  // held in registers across the k-tile. The C values are loaded at tile
  // entry and stored at tile exit, which is exactly the reference's
  // in-memory accumulation chain for this tile (read-modify-write per k
  // collapses to read once / add k times / write once — same adds, same
  // order). B's row vectors are loaded once per k and shared by all MR
  // rows; the zero-skip stays a scalar per-(row,k) branch.
  template <size_t MR, size_t NV, bool kMaskedTail>
  static inline void MicroPanel(const double* a, const double* b, double* c,
                                size_t i0, size_t ac, size_t bc, size_t kk,
                                size_t k_end, size_t j, MaskT tail) {
    V acc[MR][NV];
    for (size_t m = 0; m < MR; ++m) {
      double* crow = c + (i0 + m) * bc + j;
      for (size_t v = 0; v < NV; ++v) {
        if constexpr (kMaskedTail) {
          acc[m][v] = Ops::MaskLoad(crow + v * kW, tail);
        } else {
          acc[m][v] = Ops::Load(crow + v * kW);
        }
      }
    }
    for (size_t k = kk; k < k_end; ++k) {
      const double* brow = b + k * bc + j;
      V bv[NV];
      for (size_t v = 0; v < NV; ++v) {
        if constexpr (kMaskedTail) {
          bv[v] = Ops::MaskLoad(brow + v * kW, tail);
        } else {
          bv[v] = Ops::Load(brow + v * kW);
        }
      }
      for (size_t m = 0; m < MR; ++m) {
        const double amk = a[(i0 + m) * ac + k];
        if (amk == 0.0) continue;
        const V va = Ops::Broadcast(amk);
        for (size_t v = 0; v < NV; ++v) {
          acc[m][v] = Ops::Add(acc[m][v], Ops::Mul(va, bv[v]));
        }
      }
    }
    for (size_t m = 0; m < MR; ++m) {
      double* crow = c + (i0 + m) * bc + j;
      for (size_t v = 0; v < NV; ++v) {
        if constexpr (kMaskedTail) {
          Ops::MaskStore(crow + v * kW, tail, acc[m][v]);
        } else {
          Ops::Store(crow + v * kW, acc[m][v]);
        }
      }
    }
  }

  template <size_t MR>
  static inline void RowBlock(const double* a, const double* b, double* c,
                              size_t i0, size_t ac, size_t bc, size_t kk,
                              size_t k_end, size_t jj, size_t j_end) {
    size_t j = jj;
    const MaskT no_mask{};
    for (; j + 2 * kW <= j_end; j += 2 * kW) {
      MicroPanel<MR, 2, false>(a, b, c, i0, ac, bc, kk, k_end, j, no_mask);
    }
    for (; j + kW <= j_end; j += kW) {
      MicroPanel<MR, 1, false>(a, b, c, i0, ac, bc, kk, k_end, j, no_mask);
    }
    if (j < j_end) {
      MicroPanel<MR, 1, true>(a, b, c, i0, ac, bc, kk, k_end, j,
                              Ops::TailMask(j_end - j));
    }
  }

  // C(rows x bc) += A(rows x ac) * B(ac x bc). Same kTileK/kTileJ bounds
  // as Matrix::MatMulInto so per-element chains match the reference.
  static void Gemm(const double* a, const double* b, double* c, size_t rows,
                   size_t ac, size_t bc) {
    constexpr size_t kTileK = 64;
    constexpr size_t kTileJ = 256;
    for (size_t kk = 0; kk < ac; kk += kTileK) {
      const size_t k_end = kk + kTileK < ac ? kk + kTileK : ac;
      for (size_t jj = 0; jj < bc; jj += kTileJ) {
        const size_t j_end = jj + kTileJ < bc ? jj + kTileJ : bc;
        size_t i = 0;
        for (; i + 4 <= rows; i += 4) {
          RowBlock<4>(a, b, c, i, ac, bc, kk, k_end, jj, j_end);
        }
        for (; i < rows; ++i) {
          RowBlock<1>(a, b, c, i, ac, bc, kk, k_end, jj, j_end);
        }
      }
    }
  }

  // ---- SQ8 decode-dot ---------------------------------------------------

  // scores[r] += sum_d w[d] * double(codes[d * stride + r]) for r in
  // [0, stride). Lane-per-score over a dim-major code panel: each output
  // element keeps one independent ascending-d accumulation chain held in
  // a register across the d loop, so scalar and vector kernels round
  // identically per element (the uint8 -> double widen is exact and the
  // read-once/add-dims-times/write-once collapse matches the scalar
  // read-modify-write chain). stride % 8 == 0 by caller contract, so
  // both vector widths tile the row axis without masks.
  static void Sq8DotAccum(const uint8_t* codes, size_t stride,
                          const double* w, size_t dims, double* scores) {
    for (size_t r = 0; r < stride; r += kW) {
      V acc = Ops::Load(scores + r);
      const uint8_t* col = codes + r;
      for (size_t d = 0; d < dims; ++d) {
        const V vc = Ops::LoadU8(col + d * stride);
        acc = Ops::Add(acc, Ops::Mul(Ops::Broadcast(w[d]), vc));
      }
      Ops::Store(scores + r, acc);
    }
  }

  // ---- Transcendentals --------------------------------------------------

  // FastExp, lane-parallel. Same expression, same constants.
  static inline V ExpV(V x) {
    x = Ops::SelGt(x, Ops::Broadcast(fastexp::kClamp));
    x = Ops::SelLt(x, Ops::Broadcast(-fastexp::kClamp));
    const V shift = Ops::Broadcast(fastexp::kShift);
    const V t = Ops::Add(Ops::Mul(x, Ops::Broadcast(fastexp::kLog2e)), shift);
    const V kd = Ops::Sub(t, shift);
    const V r =
        Ops::Sub(Ops::Sub(x, Ops::Mul(kd, Ops::Broadcast(fastexp::kLn2Hi))),
                 Ops::Mul(kd, Ops::Broadcast(fastexp::kLn2Lo)));
    V p = Ops::Broadcast(fastexp::kPolyLead);
    for (double c : fastexp::kPoly) {
      p = Ops::Add(Ops::Mul(p, r), Ops::Broadcast(c));
    }
    return Ops::Mul(p, Ops::ExpScale(kd));
  }

  static inline V SigmoidV(V x) {
    const V one = Ops::Broadcast(1.0);
    // -x is a sign-bit flip in IEEE, like the scalar negation.
    const V nx = Ops::Xor(x, Ops::Broadcast(-0.0));
    return Ops::Div(one, Ops::Add(one, ExpV(nx)));
  }

  static inline V TanhV(V x) {
    const V sign = Ops::Broadcast(-0.0);
    V ax = Ops::AndNot(sign, x);  // fabs: clear the sign bit
    ax = Ops::SelGt(ax, Ops::Broadcast(fastexp::kTanhClamp));
    const V z = ExpV(Ops::Mul(Ops::Broadcast(2.0), ax));
    const V one = Ops::Broadcast(1.0);
    const V t = Ops::Div(Ops::Sub(z, one), Ops::Add(z, one));
    // copysign(t, x) bit for bit.
    return Ops::Or(Ops::AndNot(sign, t), Ops::And(sign, x));
  }

  static inline V GruCombineV(V z, V n, V h) {
    const V zn = Ops::Mul(z, n);
    const V a = Ops::Add(n, Ops::Mul(Ops::Broadcast(-1.0), zn));
    return Ops::Add(a, Ops::Mul(z, h));
  }

  // ---- Elementwise drivers (masked tails, no scalar cleanup) ------------

  static void Sigmoid(double* d, size_t n) {
    size_t i = 0;
    for (; i + kW <= n; i += kW) {
      Ops::Store(d + i, SigmoidV(Ops::Load(d + i)));
    }
    if (i < n) {
      const MaskT m = Ops::TailMask(n - i);
      Ops::MaskStore(d + i, m, SigmoidV(Ops::MaskLoad(d + i, m)));
    }
  }

  static void Tanh(double* d, size_t n) {
    size_t i = 0;
    for (; i + kW <= n; i += kW) {
      Ops::Store(d + i, TanhV(Ops::Load(d + i)));
    }
    if (i < n) {
      const MaskT m = Ops::TailMask(n - i);
      Ops::MaskStore(d + i, m, TanhV(Ops::MaskLoad(d + i, m)));
    }
  }

  static void AddSigmoid(const double* a, const double* b, double* out,
                         size_t n) {
    size_t i = 0;
    for (; i + kW <= n; i += kW) {
      Ops::Store(out + i,
                 SigmoidV(Ops::Add(Ops::Load(a + i), Ops::Load(b + i))));
    }
    if (i < n) {
      const MaskT m = Ops::TailMask(n - i);
      Ops::MaskStore(
          out + i, m,
          SigmoidV(Ops::Add(Ops::MaskLoad(a + i, m), Ops::MaskLoad(b + i, m))));
    }
  }

  static void AddTanh(const double* a, const double* b, double* out,
                      size_t n) {
    size_t i = 0;
    for (; i + kW <= n; i += kW) {
      Ops::Store(out + i, TanhV(Ops::Add(Ops::Load(a + i), Ops::Load(b + i))));
    }
    if (i < n) {
      const MaskT m = Ops::TailMask(n - i);
      Ops::MaskStore(
          out + i, m,
          TanhV(Ops::Add(Ops::MaskLoad(a + i, m), Ops::MaskLoad(b + i, m))));
    }
  }

  static void Mul(const double* a, const double* b, double* out, size_t n) {
    size_t i = 0;
    for (; i + kW <= n; i += kW) {
      Ops::Store(out + i, Ops::Mul(Ops::Load(a + i), Ops::Load(b + i)));
    }
    if (i < n) {
      const MaskT m = Ops::TailMask(n - i);
      Ops::MaskStore(out + i, m,
                     Ops::Mul(Ops::MaskLoad(a + i, m), Ops::MaskLoad(b + i, m)));
    }
  }

  static void GruCombine(const double* z, const double* n, const double* h,
                         double* out, size_t count) {
    size_t i = 0;
    for (; i + kW <= count; i += kW) {
      Ops::Store(out + i, GruCombineV(Ops::Load(z + i), Ops::Load(n + i),
                                      Ops::Load(h + i)));
    }
    if (i < count) {
      const MaskT m = Ops::TailMask(count - i);
      Ops::MaskStore(out + i, m,
                     GruCombineV(Ops::MaskLoad(z + i, m), Ops::MaskLoad(n + i, m),
                                 Ops::MaskLoad(h + i, m)));
    }
  }

  static void Bias(double* c, const double* bias, size_t rows, size_t cols) {
    for (size_t r = 0; r < rows; ++r) {
      double* row = c + r * cols;
      size_t j = 0;
      for (; j + kW <= cols; j += kW) {
        Ops::Store(row + j, Ops::Add(Ops::Load(row + j), Ops::Load(bias + j)));
      }
      if (j < cols) {
        const MaskT m = Ops::TailMask(cols - j);
        Ops::MaskStore(row + j, m,
                       Ops::Add(Ops::MaskLoad(row + j, m),
                                Ops::MaskLoad(bias + j, m)));
      }
    }
  }
};

}  // namespace kgpip::nn::simd::detail

#endif  // KGPIP_NN_SIMD_KERNELS_IMPL_H_
