#ifndef KGPIP_NN_INFERENCE_H_
#define KGPIP_NN_INFERENCE_H_

#include <cmath>
#include <cstddef>

#include "nn/fastmath.h"
#include "nn/matrix.h"

namespace kgpip::nn {

/// Tape-free forward kernels for serve-time inference.
///
/// These operate on raw `Matrix` values and caller-owned output buffers:
/// no `VarNode` is built, no closure captured, no shared_ptr touched.
/// Every kernel is **bit-identical** to the corresponding autograd
/// forward pass: the serve GEMM reproduces Matrix::MatMulInto's tiling,
/// per-element ascending-k accumulation, and zero-skip exactly (it is
/// merely restructured for vectorization — see inference.cc), and every
/// elementwise expression matches the tape op in the same order. The
/// generator's tape-vs-tape-free equivalence tests enforce this
/// byte-for-byte.

/// Activation fused into FusedLinear's output pass.
enum class Activation { kNone, kTanh, kSigmoid };

/// out = act(x * w + b), where `b` is a 1 x cols bias row broadcast over
/// every output row. Bit-identical to
/// `Act(AddRowBroadcast(MatMul(x, w), b)).value()` on the tape path.
/// `out` must not alias `x`, `w`, or `b`; its storage is reused (no
/// allocation when its capacity already fits the result).
void FusedLinear(const Matrix& x, const Matrix& w, const Matrix& b,
                 Activation act, Matrix* out);

/// Elementwise in-place activations (same expressions as the tape ops).
void SigmoidInPlace(Matrix* m);
void TanhInPlace(Matrix* m);

/// out = a ⊙ b elementwise into a caller-owned buffer (same as
/// `Mul(a, b).value()`). `out` must not alias `a`; aliasing `b` is fine.
void MulInto(const Matrix& a, const Matrix& b, Matrix* out);

/// Sigmoid of a scalar logit — the exact function the tape decode uses
/// for edge probabilities (see fastmath.h for semantics).
inline double SigmoidScalar(double x) { return FastSigmoid(x); }

/// Softmax over a contiguous row of `n` logits into `out` (may alias
/// `logits`). Same arithmetic as SoftmaxValue: subtract the running max,
/// exponentiate, normalize by the ascending-order sum.
void SoftmaxRow(const double* logits, size_t n, double* out);

/// Fused-panel GRU forward: `*out = GRU(x, h)` given the packed gate
/// panels from GruCell::PackFused (`wx`/`bx` = [xz|xr|xn], `wh2`/`bh2`
/// = [hz|hr]) plus the candidate hidden projection `whn`/`bhn`. Runs
/// two wide GEMMs instead of five narrow ones; bit-identical to
/// GruCell::ForwardValue (and therefore to the tape GRU) because every
/// output column's accumulation chain and every elementwise expression
/// is unchanged. `xg` (rows x 3h), `hg` (rows x 2h), and `scratch`-like
/// buffers `z`, `r`, `rh`, `tmp`, `cand` are caller-owned temporaries;
/// none may alias `x`, `h`, or `out`.
void GruFusedForward(const Matrix& x, const Matrix& h, const Matrix& wx,
                     const Matrix& bx, const Matrix& wh2, const Matrix& bh2,
                     const Matrix& whn, const Matrix& bhn, Matrix* xg,
                     Matrix* hg, Matrix* z, Matrix* r, Matrix* rh,
                     Matrix* tmp, Matrix* cand, Matrix* out);

}  // namespace kgpip::nn

#endif  // KGPIP_NN_INFERENCE_H_
