#ifndef KGPIP_NN_SIMD_KERNELS_H_
#define KGPIP_NN_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace kgpip::nn::simd {

/// Hand-written SIMD micro-kernels for the serve-path linear algebra.
///
/// Three implementations of every kernel — scalar reference, AVX2
/// intrinsics, AVX-512F intrinsics — all producing **byte-identical**
/// output:
///   - GEMM keeps one independent accumulation chain per output element,
///     walking k in ascending order and skipping zero A coefficients
///     exactly like Matrix::MatMulInto (the training-path reference).
///     SIMD lanes map to distinct output columns, and packed IEEE
///     mul/add round exactly like their scalar forms lane by lane, so
///     width cannot change a single bit. FMA contraction is forbidden
///     (these files build with -ffp-contract=off; the kernels issue
///     separate multiply and add).
///   - The activation kernels evaluate the *same* straight-line
///     expression as FastExp/FastSigmoid/FastTanh (fastmath.h), sharing
///     its constants, one lane per element; ragged tails fall back to
///     the scalar inline functions themselves.
///
/// Dispatch: the active level resolves once from CPUID, overridable via
/// the KGPIP_ISA environment variable ("scalar" / "avx2" / "avx512" —
/// clamped down to what the host supports) or ForceIsa() from tests.
/// "scalar" means the reference C++ kernels (the compiler may still
/// auto-vectorize them; output is bit-identical either way).

enum class Isa { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Stable lowercase name ("scalar", "avx2", "avx512").
const char* IsaName(Isa isa);

/// Whether the kernel variant was compiled into this binary (x86-64 +
/// GCC/Clang builds carry all three; other targets scalar only).
bool IsaCompiled(Isa isa);

/// Compiled AND executable on this host (CPUID + OS state checked).
bool IsaSupported(Isa isa);

/// The widest supported level.
Isa BestSupportedIsa();

/// The level the dispatched kernels currently run at. Resolves lazily on
/// first use: KGPIP_ISA override if set, else BestSupportedIsa(). Also
/// exported as the `nn.isa_level` gauge (0/1/2) for statusz/audit
/// attribution.
Isa ActiveIsa();

/// Overrides the active level (clamped down to IsaSupported); returns
/// the level actually applied. Not synchronized with in-flight kernel
/// calls — switch between decodes only (tests, startup).
Isa ForceIsa(Isa isa);

/// Re-resolves the active level from KGPIP_ISA + CPUID (used at startup
/// and by the dispatch-override tests after setenv).
Isa RefreshIsaFromEnv();

// --- Kernels. Every function takes the ISA level explicitly so tests
// can sweep levels in one process; callers wanting dispatch pass
// ActiveIsa(). Calling a level for which IsaSupported() is false is
// undefined behavior (illegal instruction on older hosts).

/// C(rows x bc) += A(rows x ac) * B(ac x bc), row-major, C pre-zeroed by
/// the caller (or carrying prior accumulation — the kernel only ever
/// adds). Bit-identical to Matrix::MatMulInto's accumulation. C must not
/// alias A or B.
void GemmRows(Isa isa, const double* a, const double* b, double* c,
              size_t rows, size_t ac, size_t bc);

/// row[j] += bias[j] for every row of C (the AddRowBroadcast tail of a
/// fused linear layer).
void BiasRows(Isa isa, double* c, const double* bias, size_t rows,
              size_t cols);

/// In-place elementwise activations over a flat buffer.
void SigmoidN(Isa isa, double* d, size_t n);
void TanhN(Isa isa, double* d, size_t n);

/// out[i] = FastSigmoid(a[i] + b[i]) / FastTanh(a[i] + b[i]) — the GRU
/// gate squash over pre-summed x/h affine panels. out may alias a or b.
void AddSigmoidN(Isa isa, const double* a, const double* b, double* out,
                 size_t n);
void AddTanhN(Isa isa, const double* a, const double* b, double* out,
              size_t n);

/// out[i] = a[i] * b[i]; out may alias b but not a (matches MulInto).
void MulN(Isa isa, const double* a, const double* b, double* out, size_t n);

/// The GRU output combine, association preserved from the tape
/// expression Add(Sub(n, Mul(z, n)), Mul(z, h)):
///   out[i] = (n[i] + (-1) * (z[i] * n[i])) + z[i] * h[i].
void GruCombineN(Isa isa, const double* z, const double* n, const double* h,
                 double* out, size_t count);

/// SQ8 decode-dot for the IVF index (embed::SimIndex): accumulates the
/// weighted sum of quantization codes into per-row scores,
///   scores[r] += sum_d w[d] * double(codes[d * stride + r])
/// for r in [0, stride). `codes` is a dim-major (transposed) panel of
/// uint8 codes — one cell's rows side by side — so SIMD lanes map to
/// distinct rows and each score keeps one independent ascending-d chain;
/// uint8 -> double conversion is exact, so every ISA level rounds
/// identically. Caller contract: stride is a multiple of 8 (pad rows
/// carry zero codes) and `scores` has `stride` elements.
void Sq8DotAccum(Isa isa, const uint8_t* codes, size_t stride,
                 const double* w, size_t dims, double* scores);

}  // namespace kgpip::nn::simd

#endif  // KGPIP_NN_SIMD_KERNELS_H_
