#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "nn/simd_kernels.h"
#include "util/logging.h"

namespace kgpip::nn {

Matrix Matrix::Randn(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  const double scale = std::sqrt(2.0 / static_cast<double>(rows + cols));
  for (size_t i = 0; i < m.data_.size(); ++i) {
    m.data_[i] = rng->Normal() * scale;
  }
  return m;
}

void Matrix::Fill(double value) {
  for (double& v : data_) v = value;
}

void Matrix::AddInPlace(const Matrix& other) {
  KGPIP_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, double scale) {
  KGPIP_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

double Matrix::Norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

Matrix Matrix::MatMul(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulInto(a, b, &c);
  return c;
}

void Matrix::MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  KGPIP_CHECK(a.cols_ == b.rows_)
      << "matmul shape mismatch: " << a.rows_ << "x" << a.cols_ << " * "
      << b.rows_ << "x" << b.cols_;
  out->Reshape(a.rows_, b.cols_);
  out->Fill(0.0);
  // Dispatched micro-kernel (simd_kernels.h). Every level — scalar
  // reference, AVX2, AVX-512 — reproduces the cache-blocked ikj loop's
  // exact per-element chain (k ascending within 64x256 tiles, zero
  // coefficients skipped), so training and serving stay bit-identical
  // across hosts and KGPIP_ISA settings.
  simd::GemmRows(simd::ActiveIsa(), a.data(), b.data(), out->data(), a.rows_,
                 a.cols_, b.cols_);
}

Matrix Matrix::TransposeMatMul(const Matrix& a, const Matrix& b) {
  KGPIP_CHECK(a.rows_ == b.rows_);
  Matrix c(a.cols_, b.cols_);
  for (size_t k = 0; k < a.rows_; ++k) {
    const double* arow = a.data() + k * a.cols_;
    const double* brow = b.data() + k * b.cols_;
    for (size_t i = 0; i < a.cols_; ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.data() + i * c.cols_;
      for (size_t j = 0; j < b.cols_; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix Matrix::MatMulTranspose(const Matrix& a, const Matrix& b) {
  KGPIP_CHECK(a.cols_ == b.cols_);
  Matrix c(a.rows_, b.rows_);
  for (size_t i = 0; i < a.rows_; ++i) {
    const double* arow = a.data() + i * a.cols_;
    for (size_t j = 0; j < b.rows_; ++j) {
      const double* brow = b.data() + j * b.cols_;
      double s = 0.0;
      for (size_t k = 0; k < a.cols_; ++k) s += arow[k] * brow[k];
      c(i, j) = s;
    }
  }
  return c;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

}  // namespace kgpip::nn
