#ifndef KGPIP_NN_MATRIX_H_
#define KGPIP_NN_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace kgpip::nn {

/// Dense row-major 2-D matrix of doubles. The only tensor shape the graph
/// generator needs: node-embedding matrices (n x d), weight matrices and
/// logits rows.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Xavier/Glorot-scaled random initialization.
  static Matrix Randn(size_t rows, size_t cols, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Reinterprets the buffer as `rows` x `cols`, preserving existing
  /// elements in flat row-major order (appending rows at an unchanged
  /// column count keeps old rows intact; new elements are zero). Never
  /// shrinks capacity, so shrinking and re-growing within a previously
  /// reached size performs no heap allocation — the property the
  /// generator's decode workspace relies on.
  void Reshape(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Preallocates backing storage without changing the logical shape.
  void ReserveElems(size_t elems) { data_.reserve(elems); }

  /// Elements the buffer can hold without reallocating.
  size_t CapacityElems() const { return data_.capacity(); }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// In-place fill.
  void Fill(double value);

  /// this += other (same shape).
  void AddInPlace(const Matrix& other);
  /// this += scale * other.
  void AddScaled(const Matrix& other, double scale);

  /// Frobenius norm.
  double Norm() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// C = A * B. Shapes must agree.
  static Matrix MatMul(const Matrix& a, const Matrix& b);
  /// C = A * B into a caller-owned buffer (reshaped, zeroed, then
  /// accumulated by the same blocked kernel as MatMul, so results are
  /// bit-identical). `out` must not alias `a` or `b`.
  static void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);
  /// C = A^T * B.
  static Matrix TransposeMatMul(const Matrix& a, const Matrix& b);
  /// C = A * B^T.
  static Matrix MatMulTranspose(const Matrix& a, const Matrix& b);

  Matrix Transposed() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace kgpip::nn

#endif  // KGPIP_NN_MATRIX_H_
