#include "nn/inference.h"

#include <algorithm>
#include <cmath>

#include "nn/simd_kernels.h"
#include "util/logging.h"

namespace kgpip::nn {

// The serve kernels route through the dispatched SIMD layer
// (simd_kernels.h): explicit AVX-512F/AVX2 intrinsic micro-kernels with
// a scalar reference, selected once at runtime from CPUID (KGPIP_ISA
// overrides). Every level produces byte-identical output — the kernels
// keep one ascending-k accumulation chain per output element and the
// activation expressions of fastmath.h, and packed IEEE ops round
// exactly like their scalar forms lane by lane — so the gen equivalence
// suite's tape-vs-engine byte identity holds at every dispatch level.
// (This replaced the PR 5 target_clones IFUNC approach: manual dispatch
// is TSan-safe and lets one binary carry an AVX-512 path.)

namespace {

void GemmInto(const Matrix& a, const Matrix& b, Matrix* out) {
  KGPIP_CHECK(a.cols() == b.rows())
      << "matmul shape mismatch: " << a.rows() << "x" << a.cols() << " * "
      << b.rows() << "x" << b.cols();
  out->Reshape(a.rows(), b.cols());
  out->Fill(0.0);
  simd::GemmRows(simd::ActiveIsa(), a.data(), b.data(), out->data(), a.rows(),
                 a.cols(), b.cols());
}

}  // namespace

void FusedLinear(const Matrix& x, const Matrix& w, const Matrix& b,
                 Activation act, Matrix* out) {
  KGPIP_CHECK(b.rows() == 1 && b.cols() == w.cols());
  const simd::Isa isa = simd::ActiveIsa();
  GemmInto(x, w, out);
  // Bias broadcast in the same row-major order as AddRowBroadcast.
  simd::BiasRows(isa, out->data(), b.data(), out->rows(), out->cols());
  switch (act) {
    case Activation::kNone:
      break;
    case Activation::kTanh:
      simd::TanhN(isa, out->data(), out->size());
      break;
    case Activation::kSigmoid:
      simd::SigmoidN(isa, out->data(), out->size());
      break;
  }
}

void SigmoidInPlace(Matrix* m) {
  simd::SigmoidN(simd::ActiveIsa(), m->data(), m->size());
}

void TanhInPlace(Matrix* m) {
  simd::TanhN(simd::ActiveIsa(), m->data(), m->size());
}

void MulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  KGPIP_CHECK(a.SameShape(b));
  out->Reshape(a.rows(), a.cols());
  simd::MulN(simd::ActiveIsa(), a.data(), b.data(), out->data(), a.size());
}

void GruFusedForward(const Matrix& x, const Matrix& h, const Matrix& wx,
                     const Matrix& bx, const Matrix& wh2, const Matrix& bh2,
                     const Matrix& whn, const Matrix& bhn, Matrix* xg,
                     Matrix* hg, Matrix* z, Matrix* r, Matrix* rh,
                     Matrix* tmp, Matrix* cand, Matrix* out) {
  const size_t n = h.rows();
  const size_t hd = h.cols();
  const simd::Isa isa = simd::ActiveIsa();
  FusedLinear(x, wx, bx, Activation::kNone, xg);    // [xz|xr|xn] + bias
  FusedLinear(h, wh2, bh2, Activation::kNone, hg);  // [hz|hr] + bias
  z->Reshape(n, hd);
  r->Reshape(n, hd);
  // Gate j of row i sums its x- and h-side affine parts in the same
  // order as ForwardValue's AddInPlace (x part first), then squashes.
  for (size_t i = 0; i < n; ++i) {
    const double* xrow = xg->data() + i * 3 * hd;
    const double* hrow = hg->data() + i * 2 * hd;
    simd::AddSigmoidN(isa, xrow, hrow, z->data() + i * hd, hd);
    simd::AddSigmoidN(isa, xrow + hd, hrow + hd, r->data() + i * hd, hd);
  }
  MulInto(*r, h, rh);
  FusedLinear(*rh, whn, bhn, Activation::kNone, tmp);
  cand->Reshape(n, hd);
  for (size_t i = 0; i < n; ++i) {
    const double* xrow = xg->data() + i * 3 * hd + 2 * hd;
    simd::AddTanhN(isa, xrow, tmp->data() + i * hd, cand->data() + i * hd, hd);
  }
  out->Reshape(n, hd);
  // Same association as the tape expression Add(Sub(n, Mul(z, n)),
  // Mul(z, h)): (n + (-1)*(z*n)) + z*h.
  simd::GruCombineN(isa, z->data(), cand->data(), h.data(), out->data(),
                    n * hd);
}

void SoftmaxRow(const double* logits, size_t n, double* out) {
  KGPIP_CHECK(n > 0);
  double max_logit = logits[0];
  for (size_t j = 1; j < n; ++j) max_logit = std::max(max_logit, logits[j]);
  double z = 0.0;
  for (size_t j = 0; j < n; ++j) {
    out[j] = std::exp(logits[j] - max_logit);
    z += out[j];
  }
  for (size_t j = 0; j < n; ++j) out[j] /= z;
}

}  // namespace kgpip::nn
