#include "nn/inference.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace kgpip::nn {

// The serve kernels runtime-dispatch an AVX2 clone where the host
// supports it (glibc IFUNC resolution keeps the binary portable).
// Wider lanes do not change a single bit: packed IEEE mul/add/div round
// exactly like their scalar forms lane by lane, every accumulation
// chain stays per-element, and -ffp-contract=off (set for this file)
// forbids the FMA contraction that would change results. Disabled under
// ThreadSanitizer: TSan's runtime is not IFUNC-safe (the resolver runs
// before the sanitizer initializes and crashes at startup).
#if defined(__x86_64__) && defined(__has_attribute) && \
    !defined(__SANITIZE_THREAD__)
#if __has_attribute(target_clones)
#define KGPIP_SERVE_CLONES __attribute__((target_clones("avx2", "default")))
#endif
#endif
#ifndef KGPIP_SERVE_CLONES
#define KGPIP_SERVE_CLONES
#endif

namespace {

// Serve-path GEMM. Bit-identical to Matrix::MatMulInto — same cache
// tiling constants, same ascending-k accumulation per output element,
// same aik == 0.0 skip — but restructured so the compiler can vectorize
// and register-block it: k is unrolled in quads whose adds issue
// sequentially per element, so each c(i,j) chain is still
// (((c + a0*b0) + a1*b1) + a2*b2) + a3*b3, exactly what four separate
// k passes produce. `__restrict` lets the j-loop vectorize (each j owns
// an independent accumulation chain, and packed IEEE ops round exactly
// like their scalar forms, so SIMD here cannot change a single bit).
// This file builds with -ffp-contract=off (see src/nn/CMakeLists.txt),
// which forbids the FMA contraction that *would* change results.
KGPIP_SERVE_CLONES
void GemmInto(const Matrix& a, const Matrix& b, Matrix* out) {
  KGPIP_CHECK(a.cols() == b.rows())
      << "matmul shape mismatch: " << a.rows() << "x" << a.cols() << " * "
      << b.rows() << "x" << b.cols();
  out->Reshape(a.rows(), b.cols());
  out->Fill(0.0);
  const size_t ar = a.rows();
  const size_t ac = a.cols();
  const size_t bc = b.cols();
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = out->data();
  constexpr size_t kTileK = 64;
  constexpr size_t kTileJ = 256;
  for (size_t kk = 0; kk < ac; kk += kTileK) {
    const size_t k_end = std::min(kk + kTileK, ac);
    for (size_t jj = 0; jj < bc; jj += kTileJ) {
      const size_t j_end = std::min(jj + kTileJ, bc);
      for (size_t i = 0; i < ar; ++i) {
        double* __restrict crow = pc + i * bc;
        const double* arow = pa + i * ac;
        size_t k = kk;
        for (; k + 3 < k_end; k += 4) {
          const double a0 = arow[k];
          const double a1 = arow[k + 1];
          const double a2 = arow[k + 2];
          const double a3 = arow[k + 3];
          const double* __restrict b0 = pb + k * bc;
          const double* __restrict b1 = b0 + bc;
          const double* __restrict b2 = b1 + bc;
          const double* __restrict b3 = b2 + bc;
          if (a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0) {
            for (size_t j = jj; j < j_end; ++j) {
              crow[j] = (((crow[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) +
                        a3 * b3[j];
            }
          } else {
            // A zero coefficient must be *skipped*, not added: c += 0.0
            // would flip a -0.0 accumulator to +0.0. Falling back to one
            // pass per nonzero k keeps chains and skips identical.
            if (a0 != 0.0) {
              for (size_t j = jj; j < j_end; ++j) crow[j] += a0 * b0[j];
            }
            if (a1 != 0.0) {
              for (size_t j = jj; j < j_end; ++j) crow[j] += a1 * b1[j];
            }
            if (a2 != 0.0) {
              for (size_t j = jj; j < j_end; ++j) crow[j] += a2 * b2[j];
            }
            if (a3 != 0.0) {
              for (size_t j = jj; j < j_end; ++j) crow[j] += a3 * b3[j];
            }
          }
        }
        for (; k < k_end; ++k) {
          const double aik = arow[k];
          if (aik == 0.0) continue;
          const double* __restrict brow = pb + k * bc;
          for (size_t j = jj; j < j_end; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

}  // namespace

void FusedLinear(const Matrix& x, const Matrix& w, const Matrix& b,
                 Activation act, Matrix* out) {
  KGPIP_CHECK(b.rows() == 1 && b.cols() == w.cols());
  GemmInto(x, w, out);
  // Bias broadcast in the same row-major order as AddRowBroadcast.
  const double* bias = b.data();
  for (size_t i = 0; i < out->rows(); ++i) {
    double* row = out->data() + i * out->cols();
    for (size_t j = 0; j < out->cols(); ++j) row[j] += bias[j];
  }
  switch (act) {
    case Activation::kNone:
      break;
    case Activation::kTanh:
      TanhInPlace(out);
      break;
    case Activation::kSigmoid:
      SigmoidInPlace(out);
      break;
  }
}

KGPIP_SERVE_CLONES
void SigmoidInPlace(Matrix* m) {
  double* d = m->data();
  for (size_t i = 0; i < m->size(); ++i) d[i] = FastSigmoid(d[i]);
}

KGPIP_SERVE_CLONES
void TanhInPlace(Matrix* m) {
  double* d = m->data();
  for (size_t i = 0; i < m->size(); ++i) d[i] = FastTanh(d[i]);
}

void MulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  KGPIP_CHECK(a.SameShape(b));
  out->Reshape(a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out->data();
  for (size_t i = 0; i < a.size(); ++i) po[i] = pa[i] * pb[i];
}

KGPIP_SERVE_CLONES
void GruFusedForward(const Matrix& x, const Matrix& h, const Matrix& wx,
                     const Matrix& bx, const Matrix& wh2, const Matrix& bh2,
                     const Matrix& whn, const Matrix& bhn, Matrix* xg,
                     Matrix* hg, Matrix* z, Matrix* r, Matrix* rh,
                     Matrix* tmp, Matrix* cand, Matrix* out) {
  const size_t n = h.rows();
  const size_t hd = h.cols();
  FusedLinear(x, wx, bx, Activation::kNone, xg);    // [xz|xr|xn] + bias
  FusedLinear(h, wh2, bh2, Activation::kNone, hg);  // [hz|hr] + bias
  z->Reshape(n, hd);
  r->Reshape(n, hd);
  // Gate j of row i sums its x- and h-side affine parts in the same
  // order as ForwardValue's AddInPlace (x part first), then squashes.
  for (size_t i = 0; i < n; ++i) {
    const double* xrow = xg->data() + i * 3 * hd;
    const double* hrow = hg->data() + i * 2 * hd;
    double* zrow = z->data() + i * hd;
    double* rrow = r->data() + i * hd;
    for (size_t j = 0; j < hd; ++j) zrow[j] = FastSigmoid(xrow[j] + hrow[j]);
    for (size_t j = 0; j < hd; ++j) {
      rrow[j] = FastSigmoid(xrow[hd + j] + hrow[hd + j]);
    }
  }
  MulInto(*r, h, rh);
  FusedLinear(*rh, whn, bhn, Activation::kNone, tmp);
  cand->Reshape(n, hd);
  for (size_t i = 0; i < n; ++i) {
    const double* xrow = xg->data() + i * 3 * hd + 2 * hd;
    const double* trow = tmp->data() + i * hd;
    double* crow = cand->data() + i * hd;
    for (size_t j = 0; j < hd; ++j) crow[j] = FastTanh(xrow[j] + trow[j]);
  }
  out->Reshape(n, hd);
  const double* zp = z->data();
  const double* np = cand->data();
  const double* hp = h.data();
  double* op = out->data();
  // Same association as the tape expression Add(Sub(n, Mul(z, n)),
  // Mul(z, h)): (n + (-1)*(z*n)) + z*h.
  for (size_t k = 0; k < n * hd; ++k) {
    const double zn = zp[k] * np[k];
    const double a = np[k] + (-1.0) * zn;
    op[k] = a + zp[k] * hp[k];
  }
}

void SoftmaxRow(const double* logits, size_t n, double* out) {
  KGPIP_CHECK(n > 0);
  double max_logit = logits[0];
  for (size_t j = 1; j < n; ++j) max_logit = std::max(max_logit, logits[j]);
  double z = 0.0;
  for (size_t j = 0; j < n; ++j) {
    out[j] = std::exp(logits[j] - max_logit);
    z += out[j];
  }
  for (size_t j = 0; j < n; ++j) out[j] /= z;
}

}  // namespace kgpip::nn
