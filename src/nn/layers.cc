#include "nn/layers.h"

#include <cmath>
#include <cstring>

#include "util/logging.h"

namespace kgpip::nn {

Var ParamStore::Create(const std::string& name, size_t rows, size_t cols,
                       Rng* rng) {
  Var param(Matrix::Randn(rows, cols, rng), /*requires_grad=*/true);
  params_.push_back(param);
  names_.push_back(name);
  return param;
}

void ParamStore::ZeroGrads() {
  for (Var& p : params_) p.ZeroGrad();
}

size_t ParamStore::TotalSize() const {
  size_t n = 0;
  for (const Var& p : params_) n += p.value().size();
  return n;
}

Json ParamStore::ToJson() const {
  Json out = Json::Object();
  for (size_t i = 0; i < params_.size(); ++i) {
    Json entry = Json::Object();
    entry.Set("rows", Json(params_[i].value().rows()));
    entry.Set("cols", Json(params_[i].value().cols()));
    Json values = Json::Array();
    const Matrix& m = params_[i].value();
    for (size_t k = 0; k < m.size(); ++k) values.Append(Json(m.data()[k]));
    entry.Set("values", std::move(values));
    out.Set(names_[i], std::move(entry));
  }
  return out;
}

Status ParamStore::FromJson(const Json& json) {
  for (size_t i = 0; i < params_.size(); ++i) {
    if (!json.Has(names_[i])) {
      return Status::NotFound("missing parameter '" + names_[i] + "'");
    }
    const Json& entry = json.Get(names_[i]);
    Matrix& m = params_[i].mutable_value();
    if (static_cast<size_t>(entry.Get("rows").AsInt()) != m.rows() ||
        static_cast<size_t>(entry.Get("cols").AsInt()) != m.cols()) {
      return Status::InvalidArgument("shape mismatch for parameter '" +
                                     names_[i] + "'");
    }
    const Json& values = entry.Get("values");
    if (values.size() != m.size()) {
      return Status::InvalidArgument("value count mismatch for '" +
                                     names_[i] + "'");
    }
    for (size_t k = 0; k < m.size(); ++k) {
      m.data()[k] = values.at(k).AsDouble();
    }
  }
  return Status::Ok();
}

Linear::Linear(ParamStore* store, const std::string& name, size_t in,
               size_t out, Rng* rng) {
  weight_ = store->Create(name + ".weight", in, out, rng);
  bias_ = store->Create(name + ".bias", 1, out, rng);
  bias_.mutable_value().Fill(0.0);
}

Var Linear::Forward(const Var& x) const {
  return AddRowBroadcast(MatMul(x, weight_), bias_);
}

void Linear::ForwardValue(const Matrix& x, Matrix* out, Activation act) const {
  FusedLinear(x, weight_.value(), bias_.value(), act, out);
}

GruCell::GruCell(ParamStore* store, const std::string& name, size_t input,
                 size_t hidden, Rng* rng)
    : xz_(store, name + ".xz", input, hidden, rng),
      hz_(store, name + ".hz", hidden, hidden, rng),
      xr_(store, name + ".xr", input, hidden, rng),
      hr_(store, name + ".hr", hidden, hidden, rng),
      xn_(store, name + ".xn", input, hidden, rng),
      hn_(store, name + ".hn", hidden, hidden, rng) {}

Var GruCell::Forward(const Var& x, const Var& h) const {
  Var z = Sigmoid(Add(xz_.Forward(x), hz_.Forward(h)));
  Var r = Sigmoid(Add(xr_.Forward(x), hr_.Forward(h)));
  Var n = Tanh(Add(xn_.Forward(x), hn_.Forward(Mul(r, h))));
  // h' = (1 - z) * n + z * h  ==  n - z*n + z*h
  return Add(Sub(n, Mul(z, n)), Mul(z, h));
}

void GruCell::ForwardValue(const Matrix& x, const Matrix& h,
                           GruScratch* scratch, Matrix* out) const {
  GruScratch& s = *scratch;
  xz_.ForwardValue(x, &s.z);
  hz_.ForwardValue(h, &s.tmp);
  s.z.AddInPlace(s.tmp);
  SigmoidInPlace(&s.z);
  xr_.ForwardValue(x, &s.r);
  hr_.ForwardValue(h, &s.tmp);
  s.r.AddInPlace(s.tmp);
  SigmoidInPlace(&s.r);
  MulInto(s.r, h, &s.rh);
  xn_.ForwardValue(x, &s.cand);
  hn_.ForwardValue(s.rh, &s.tmp);
  s.cand.AddInPlace(s.tmp);
  TanhInPlace(&s.cand);
  out->Reshape(h.rows(), h.cols());
  const double* zp = s.z.data();
  const double* np = s.cand.data();
  const double* hp = h.data();
  double* op = out->data();
  // Same association as the tape expression Add(Sub(n, Mul(z, n)), Mul(z, h)):
  // (n + (-1)*(z*n)) + z*h, where x + (-1)*y is exactly x - y in IEEE754.
  for (size_t k = 0; k < h.size(); ++k) {
    const double zn = zp[k] * np[k];
    const double a = np[k] + (-1.0) * zn;
    op[k] = a + zp[k] * hp[k];
  }
}

void GruCell::PackFused(Matrix* wx, Matrix* bx, Matrix* wh2,
                        Matrix* bh2) const {
  const auto pack = [](const Linear* const* gates, size_t count, Matrix* w,
                       Matrix* b) {
    const Matrix& w0 = gates[0]->weight_value();
    const size_t rows = w0.rows();
    const size_t h = w0.cols();
    w->Reshape(rows, count * h);
    b->Reshape(1, count * h);
    for (size_t g = 0; g < count; ++g) {
      const Matrix& wg = gates[g]->weight_value();
      const Matrix& bg = gates[g]->bias_value();
      for (size_t i = 0; i < rows; ++i) {
        std::memcpy(w->data() + i * count * h + g * h, wg.data() + i * h,
                    h * sizeof(double));
      }
      std::memcpy(b->data() + g * h, bg.data(), h * sizeof(double));
    }
  };
  const Linear* x_gates[] = {&xz_, &xr_, &xn_};
  pack(x_gates, 3, wx, bx);
  const Linear* h_gates[] = {&hz_, &hr_};
  pack(h_gates, 2, wh2, bh2);
}

Adam::Adam(ParamStore* store, double lr, double beta1, double beta2,
           double eps)
    : store_(store), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  for (const Var& p : store_->params()) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step(double clip) {
  KGPIP_CHECK(m_.size() == store_->params().size())
      << "parameters registered after optimizer construction";
  ++t_;
  // Global-norm gradient clipping.
  double scale = 1.0;
  if (clip > 0.0) {
    double norm_sq = 0.0;
    for (const Var& p : store_->params()) {
      const Matrix& g = p.grad();
      if (g.size() != p.value().size()) continue;
      for (size_t k = 0; k < g.size(); ++k) {
        norm_sq += g.data()[k] * g.data()[k];
      }
    }
    double norm = std::sqrt(norm_sq);
    if (norm > clip) scale = clip / norm;
  }
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < store_->params().size(); ++i) {
    Var p = store_->params()[i];
    Matrix& value = p.mutable_value();
    const Matrix& grad = p.grad();
    if (grad.size() != value.size()) continue;  // never touched this step
    for (size_t k = 0; k < value.size(); ++k) {
      double g = grad.data()[k] * scale;
      double& m = m_[i].data()[k];
      double& v = v_[i].data()[k];
      m = beta1_ * m + (1.0 - beta1_) * g;
      v = beta2_ * v + (1.0 - beta2_) * g * g;
      double m_hat = m / bc1;
      double v_hat = v / bc2;
      value.data()[k] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
  store_->ZeroGrads();
}

}  // namespace kgpip::nn
