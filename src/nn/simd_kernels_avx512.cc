// AVX-512F kernel TU. Built with -mavx512f -ffp-contract=off; only ever
// entered through the dispatcher after a runtime CPUID check. Bitwise
// double ops go through si512 (AVX-512F) — the _pd forms need AVX-512DQ,
// which we do not require.

#include "nn/simd_kernels_isa.h"

#if defined(__x86_64__) && defined(__AVX512F__)

#include <immintrin.h>

#include "nn/simd_kernels_impl.h"

namespace kgpip::nn::simd::detail {
namespace {

struct OpsAvx512 {
  using V = __m512d;
  using MaskT = __mmask8;
  static constexpr size_t kW = 8;

  static V Load(const double* p) { return _mm512_loadu_pd(p); }
  static void Store(double* p, V v) { _mm512_storeu_pd(p, v); }
  static MaskT TailMask(size_t n) {
    return static_cast<__mmask8>((1u << n) - 1u);
  }
  static V MaskLoad(const double* p, MaskT m) {
    return _mm512_maskz_loadu_pd(m, p);
  }
  static void MaskStore(double* p, MaskT m, V v) {
    _mm512_mask_storeu_pd(p, m, v);
  }

  static V Broadcast(double x) { return _mm512_set1_pd(x); }
  static V Add(V a, V b) { return _mm512_add_pd(a, b); }
  static V Sub(V a, V b) { return _mm512_sub_pd(a, b); }
  static V Mul(V a, V b) { return _mm512_mul_pd(a, b); }
  static V Div(V a, V b) { return _mm512_div_pd(a, b); }

  // x > b ? b : x — ordered-quiet compare: a NaN lane compares false and
  // keeps x, matching the scalar ternary.
  static V SelGt(V x, V b) {
    return _mm512_mask_blend_pd(_mm512_cmp_pd_mask(x, b, _CMP_GT_OQ), x, b);
  }
  static V SelLt(V x, V b) {
    return _mm512_mask_blend_pd(_mm512_cmp_pd_mask(x, b, _CMP_LT_OQ), x, b);
  }

  static V And(V a, V b) {
    return _mm512_castsi512_pd(_mm512_and_si512(_mm512_castpd_si512(a),
                                                _mm512_castpd_si512(b)));
  }
  static V AndNot(V a, V b) {
    return _mm512_castsi512_pd(_mm512_andnot_si512(_mm512_castpd_si512(a),
                                                   _mm512_castpd_si512(b)));
  }
  static V Or(V a, V b) {
    return _mm512_castsi512_pd(_mm512_or_si512(_mm512_castpd_si512(a),
                                               _mm512_castpd_si512(b)));
  }
  static V Xor(V a, V b) {
    return _mm512_castsi512_pd(_mm512_xor_si512(_mm512_castpd_si512(a),
                                                _mm512_castpd_si512(b)));
  }

  // 2^kd for integral kd in [-1022, 1022]: truncate (exact on integral
  // values, like the scalar static_cast<int>), bias, and place in the
  // exponent field — the same bits FastExp assembles through memcpy.
  static V ExpScale(V kd) {
    __m256i ki = _mm512_cvttpd_epi32(kd);
    ki = _mm256_add_epi32(ki, _mm256_set1_epi32(1023));
    __m512i wide = _mm512_cvtepi32_epi64(ki);
    wide = _mm512_slli_epi64(wide, 52);
    return _mm512_castsi512_pd(wide);
  }

  // Eight uint8 codes zero-extended to doubles. int32 holds [0, 255]
  // exactly and int32 -> double is exact, so the widen is lossless.
  // (_mm256_cvtepu8_epi32 is AVX2, which -mavx512f implies; the _pd
  // convert from epi32 is plain AVX-512F — no DQ needed.)
  static V LoadU8(const uint8_t* p) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
    // maskz form with an all-ones mask: same convert, but GCC's plain
    // _mm512_cvtepi32_pd routes through _mm512_undefined_pd and trips
    // -Wmaybe-uninitialized.
    return _mm512_maskz_cvtepi32_pd(static_cast<__mmask8>(0xff),
                                    _mm256_cvtepu8_epi32(bytes));
  }
};

using K = Kernels<OpsAvx512>;

}  // namespace

void GemmAvx512(const double* a, const double* b, double* c, size_t rows,
                size_t ac, size_t bc) {
  K::Gemm(a, b, c, rows, ac, bc);
}
void BiasAvx512(double* c, const double* bias, size_t rows, size_t cols) {
  K::Bias(c, bias, rows, cols);
}
void SigmoidAvx512(double* d, size_t n) { K::Sigmoid(d, n); }
void TanhAvx512(double* d, size_t n) { K::Tanh(d, n); }
void AddSigmoidAvx512(const double* a, const double* b, double* out,
                      size_t n) {
  K::AddSigmoid(a, b, out, n);
}
void AddTanhAvx512(const double* a, const double* b, double* out, size_t n) {
  K::AddTanh(a, b, out, n);
}
void MulAvx512(const double* a, const double* b, double* out, size_t n) {
  K::Mul(a, b, out, n);
}
void GruCombineAvx512(const double* z, const double* n, const double* h,
                      double* out, size_t count) {
  K::GruCombine(z, n, h, out, count);
}
void Sq8DotAccumAvx512(const uint8_t* codes, size_t stride, const double* w,
                       size_t dims, double* scores) {
  K::Sq8DotAccum(codes, stride, w, dims, scores);
}

}  // namespace kgpip::nn::simd::detail

#endif  // __x86_64__ && __AVX512F__
