#include "nn/autograd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "nn/fastmath.h"
#include "util/logging.h"

namespace kgpip::nn {

Var::Var(Matrix value, bool requires_grad) {
  node_ = std::make_shared<VarNode>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Var MakeOp(Matrix value, std::vector<Var> parents,
           std::function<void(VarNode&)> backward) {
  Var out;
  out.node_ = std::make_shared<VarNode>();
  out.node_->value = std::move(value);
  bool any_grad = false;
  for (const Var& p : parents) {
    KGPIP_CHECK(p.defined());
    out.node_->parents.push_back(p.node());
    any_grad = any_grad || p.node()->requires_grad;
  }
  out.node_->requires_grad = any_grad;
  if (any_grad) out.node_->backward = std::move(backward);
  return out;
}

void Backward(const Var& loss) {
  KGPIP_CHECK(loss.defined());
  KGPIP_CHECK(loss.value().rows() == 1 && loss.value().cols() == 1)
      << "Backward expects a scalar loss";
  // Iterative topological sort (graphs can be deep for long generation
  // sequences, so recursion is off the table).
  std::vector<VarNode*> order;
  std::unordered_set<VarNode*> visited;
  std::vector<std::pair<VarNode*, size_t>> stack;
  stack.emplace_back(loss.node().get(), 0);
  visited.insert(loss.node().get());
  while (!stack.empty()) {
    auto& [node, child_index] = stack.back();
    if (child_index < node->parents.size()) {
      VarNode* parent = node->parents[child_index].get();
      ++child_index;
      if (parent->requires_grad && !visited.count(parent)) {
        visited.insert(parent);
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // `order` is post-order: parents before children; iterate in reverse.
  for (VarNode* node : order) {
    node->EnsureGrad();
    node->grad.Fill(0.0);
  }
  loss.node()->grad(0, 0) = 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    VarNode* node = *it;
    if (node->backward) node->backward(*node);
  }
}

namespace {

/// Ensures the parent's grad buffer exists before accumulation.
Matrix& GradOf(const std::shared_ptr<VarNode>& parent) {
  parent->EnsureGrad();
  return parent->grad;
}

}  // namespace

Var MatMul(const Var& a, const Var& b) {
  Matrix value = Matrix::MatMul(a.value(), b.value());
  return MakeOp(std::move(value), {a, b}, [](VarNode& self) {
    auto& pa = self.parents[0];
    auto& pb = self.parents[1];
    if (pa->requires_grad || pa->backward) {
      GradOf(pa).AddInPlace(Matrix::MatMulTranspose(self.grad, pb->value));
    }
    if (pb->requires_grad || pb->backward) {
      GradOf(pb).AddInPlace(Matrix::TransposeMatMul(pa->value, self.grad));
    }
  });
}

Var Add(const Var& a, const Var& b) {
  KGPIP_CHECK(a.value().SameShape(b.value()));
  Matrix value = a.value();
  value.AddInPlace(b.value());
  return MakeOp(std::move(value), {a, b}, [](VarNode& self) {
    GradOf(self.parents[0]).AddInPlace(self.grad);
    GradOf(self.parents[1]).AddInPlace(self.grad);
  });
}

Var AddRowBroadcast(const Var& a, const Var& row) {
  KGPIP_CHECK(row.rows() == 1 && row.cols() == a.cols());
  Matrix value = a.value();
  for (size_t i = 0; i < value.rows(); ++i) {
    for (size_t j = 0; j < value.cols(); ++j) {
      value(i, j) += row.value()(0, j);
    }
  }
  return MakeOp(std::move(value), {a, row}, [](VarNode& self) {
    GradOf(self.parents[0]).AddInPlace(self.grad);
    Matrix& rg = GradOf(self.parents[1]);
    for (size_t i = 0; i < self.grad.rows(); ++i) {
      for (size_t j = 0; j < self.grad.cols(); ++j) {
        rg(0, j) += self.grad(i, j);
      }
    }
  });
}

Var Sub(const Var& a, const Var& b) {
  KGPIP_CHECK(a.value().SameShape(b.value()));
  Matrix value = a.value();
  value.AddScaled(b.value(), -1.0);
  return MakeOp(std::move(value), {a, b}, [](VarNode& self) {
    GradOf(self.parents[0]).AddInPlace(self.grad);
    GradOf(self.parents[1]).AddScaled(self.grad, -1.0);
  });
}

Var Mul(const Var& a, const Var& b) {
  KGPIP_CHECK(a.value().SameShape(b.value()));
  Matrix value = a.value();
  for (size_t i = 0; i < value.size(); ++i) {
    value.data()[i] *= b.value().data()[i];
  }
  return MakeOp(std::move(value), {a, b}, [](VarNode& self) {
    auto& pa = self.parents[0];
    auto& pb = self.parents[1];
    Matrix& ga = GradOf(pa);
    Matrix& gb = GradOf(pb);
    for (size_t i = 0; i < self.grad.size(); ++i) {
      ga.data()[i] += self.grad.data()[i] * pb->value.data()[i];
      gb.data()[i] += self.grad.data()[i] * pa->value.data()[i];
    }
  });
}

Var Scale(const Var& a, double s) {
  Matrix value = a.value();
  for (size_t i = 0; i < value.size(); ++i) value.data()[i] *= s;
  return MakeOp(std::move(value), {a}, [s](VarNode& self) {
    GradOf(self.parents[0]).AddScaled(self.grad, s);
  });
}

Var Sigmoid(const Var& a) {
  Matrix value = a.value();
  for (size_t i = 0; i < value.size(); ++i) {
    value.data()[i] = FastSigmoid(value.data()[i]);
  }
  return MakeOp(std::move(value), {a}, [](VarNode& self) {
    Matrix& g = GradOf(self.parents[0]);
    for (size_t i = 0; i < self.grad.size(); ++i) {
      double y = self.value.data()[i];
      g.data()[i] += self.grad.data()[i] * y * (1.0 - y);
    }
  });
}

Var Tanh(const Var& a) {
  Matrix value = a.value();
  for (size_t i = 0; i < value.size(); ++i) {
    value.data()[i] = FastTanh(value.data()[i]);
  }
  return MakeOp(std::move(value), {a}, [](VarNode& self) {
    Matrix& g = GradOf(self.parents[0]);
    for (size_t i = 0; i < self.grad.size(); ++i) {
      double y = self.value.data()[i];
      g.data()[i] += self.grad.data()[i] * (1.0 - y * y);
    }
  });
}

Var Relu(const Var& a) {
  Matrix value = a.value();
  for (size_t i = 0; i < value.size(); ++i) {
    value.data()[i] = std::max(0.0, value.data()[i]);
  }
  return MakeOp(std::move(value), {a}, [](VarNode& self) {
    Matrix& g = GradOf(self.parents[0]);
    for (size_t i = 0; i < self.grad.size(); ++i) {
      if (self.value.data()[i] > 0.0) g.data()[i] += self.grad.data()[i];
    }
  });
}

Var ConcatCols(const Var& a, const Var& b) {
  KGPIP_CHECK(a.rows() == b.rows());
  Matrix value(a.rows(), a.cols() + b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) value(i, j) = a.value()(i, j);
    for (size_t j = 0; j < b.cols(); ++j) {
      value(i, a.cols() + j) = b.value()(i, j);
    }
  }
  size_t a_cols = a.cols();
  return MakeOp(std::move(value), {a, b}, [a_cols](VarNode& self) {
    Matrix& ga = GradOf(self.parents[0]);
    Matrix& gb = GradOf(self.parents[1]);
    for (size_t i = 0; i < self.grad.rows(); ++i) {
      for (size_t j = 0; j < a_cols; ++j) ga(i, j) += self.grad(i, j);
      for (size_t j = 0; j < gb.cols(); ++j) {
        gb(i, j) += self.grad(i, a_cols + j);
      }
    }
  });
}

Var ConcatRows(const Var& a, const Var& b) {
  KGPIP_CHECK(a.cols() == b.cols());
  Matrix value(a.rows() + b.rows(), a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) value(i, j) = a.value()(i, j);
  }
  for (size_t i = 0; i < b.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      value(a.rows() + i, j) = b.value()(i, j);
    }
  }
  size_t a_rows = a.rows();
  return MakeOp(std::move(value), {a, b}, [a_rows](VarNode& self) {
    Matrix& ga = GradOf(self.parents[0]);
    Matrix& gb = GradOf(self.parents[1]);
    for (size_t i = 0; i < a_rows; ++i) {
      for (size_t j = 0; j < self.grad.cols(); ++j) {
        ga(i, j) += self.grad(i, j);
      }
    }
    for (size_t i = 0; i < gb.rows(); ++i) {
      for (size_t j = 0; j < self.grad.cols(); ++j) {
        gb(i, j) += self.grad(a_rows + i, j);
      }
    }
  });
}

Var GatherRows(const Var& a, const std::vector<size_t>& indices) {
  Matrix value(indices.size(), a.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    KGPIP_CHECK(indices[i] < a.rows());
    for (size_t j = 0; j < a.cols(); ++j) {
      value(i, j) = a.value()(indices[i], j);
    }
  }
  return MakeOp(std::move(value), {a}, [indices](VarNode& self) {
    Matrix& g = GradOf(self.parents[0]);
    for (size_t i = 0; i < indices.size(); ++i) {
      for (size_t j = 0; j < self.grad.cols(); ++j) {
        g(indices[i], j) += self.grad(i, j);
      }
    }
  });
}

Var ScatterAddRows(const Var& a, const std::vector<size_t>& indices,
                   size_t num_rows) {
  KGPIP_CHECK(indices.size() == a.rows());
  Matrix value(num_rows, a.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    KGPIP_CHECK(indices[i] < num_rows);
    for (size_t j = 0; j < a.cols(); ++j) {
      value(indices[i], j) += a.value()(i, j);
    }
  }
  return MakeOp(std::move(value), {a}, [indices](VarNode& self) {
    Matrix& g = GradOf(self.parents[0]);
    for (size_t i = 0; i < indices.size(); ++i) {
      for (size_t j = 0; j < g.cols(); ++j) {
        g(i, j) += self.grad(indices[i], j);
      }
    }
  });
}

Var SumRows(const Var& a) {
  Matrix value(1, a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) value(0, j) += a.value()(i, j);
  }
  return MakeOp(std::move(value), {a}, [](VarNode& self) {
    Matrix& g = GradOf(self.parents[0]);
    for (size_t i = 0; i < g.rows(); ++i) {
      for (size_t j = 0; j < g.cols(); ++j) g(i, j) += self.grad(0, j);
    }
  });
}

Var SumAll(const Var& a) {
  Matrix value(1, 1);
  for (size_t i = 0; i < a.value().size(); ++i) {
    value(0, 0) += a.value().data()[i];
  }
  return MakeOp(std::move(value), {a}, [](VarNode& self) {
    Matrix& g = GradOf(self.parents[0]);
    double d = self.grad(0, 0);
    for (size_t i = 0; i < g.size(); ++i) g.data()[i] += d;
  });
}

Var MeanAll(const Var& a) {
  double inv = 1.0 / static_cast<double>(a.value().size());
  return Scale(SumAll(a), inv);
}

Matrix SoftmaxValue(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (size_t i = 0; i < logits.rows(); ++i) {
    double max_logit = logits(i, 0);
    for (size_t j = 1; j < logits.cols(); ++j) {
      max_logit = std::max(max_logit, logits(i, j));
    }
    double z = 0.0;
    for (size_t j = 0; j < logits.cols(); ++j) {
      out(i, j) = std::exp(logits(i, j) - max_logit);
      z += out(i, j);
    }
    for (size_t j = 0; j < logits.cols(); ++j) out(i, j) /= z;
  }
  return out;
}

Var SoftmaxCrossEntropy(const Var& logits, const std::vector<int>& targets) {
  KGPIP_CHECK(targets.size() == logits.rows());
  Matrix probs = SoftmaxValue(logits.value());
  Matrix value(1, 1);
  for (size_t i = 0; i < targets.size(); ++i) {
    KGPIP_CHECK(targets[i] >= 0 &&
                static_cast<size_t>(targets[i]) < logits.cols());
    value(0, 0) -= std::log(std::max(
        probs(i, static_cast<size_t>(targets[i])), 1e-12));
  }
  value(0, 0) /= static_cast<double>(targets.size());
  return MakeOp(std::move(value), {logits},
                [probs, targets](VarNode& self) {
                  Matrix& g = GradOf(self.parents[0]);
                  double d = self.grad(0, 0) /
                             static_cast<double>(targets.size());
                  for (size_t i = 0; i < probs.rows(); ++i) {
                    for (size_t j = 0; j < probs.cols(); ++j) {
                      double y = j == static_cast<size_t>(targets[i])
                                     ? 1.0
                                     : 0.0;
                      g(i, j) += d * (probs(i, j) - y);
                    }
                  }
                });
}

Var BinaryCrossEntropyWithLogits(const Var& logit, double target) {
  KGPIP_CHECK(logit.rows() == 1 && logit.cols() == 1);
  double x = logit.value()(0, 0);
  // log(1 + e^-|x|) + max(x,0) - x*t (stable formulation).
  double loss = std::log1p(std::exp(-std::fabs(x))) + std::max(x, 0.0) -
                x * target;
  Matrix value(1, 1);
  value(0, 0) = loss;
  double p = 1.0 / (1.0 + std::exp(-x));
  return MakeOp(std::move(value), {logit}, [p, target](VarNode& self) {
    GradOf(self.parents[0])(0, 0) += self.grad(0, 0) * (p - target);
  });
}

}  // namespace kgpip::nn
